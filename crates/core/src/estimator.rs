use std::time::{Duration, Instant};

use std::sync::Mutex;

use swact_bayesnet::{
    initial_potentials, BayesNet, CompiledTree, Cpt, Factor, Heuristic, JunctionTree,
    PropagationState, SparseMode, VarId,
};
use swact_circuit::{decompose::decompose_fanin, Circuit, LineId};

use crate::report::Estimate;
use crate::segment::{RootSource, SegmentationPlan};
use crate::{EstimateError, InputSpec, TransitionDist};

/// Configuration of the estimator.
///
/// The defaults reproduce the paper's setup: min-fill triangulation,
/// fan-in decomposition to ≤ 4, and automatic segmentation with a
/// 2¹⁷-state budget per segment's junction tree — the operating point
/// where evidence propagation runs in milliseconds (Table 1's "Update"
/// column) while per-node errors stay in the 10⁻³ band.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Options {
    /// Triangulation heuristic for junction-tree compilation.
    pub heuristic: Heuristic,
    /// Gates wider than this are decomposed into two-input trees first.
    pub max_fanin: usize,
    /// Per-segment junction-tree state budget; lower values mean more,
    /// smaller Bayesian networks (faster, slightly less exact).
    pub segment_budget: usize,
    /// Gates between segmentation cost checks (the budget may overshoot by
    /// up to this many gates' growth).
    pub check_interval: usize,
    /// Force a single Bayesian network over the whole circuit. Errors with
    /// [`EstimateError::TooLarge`] if `segment_budget` would be exceeded.
    pub single_bn: bool,
    /// Forward pairwise joints across segment boundaries: a boundary line
    /// whose sibling root was produced in the same earlier segment (and
    /// shares a clique there) enters as `P(line | sibling)` instead of an
    /// independent marginal. Recovers most of the correlation segmentation
    /// would otherwise drop; disable to reproduce the paper's plain
    /// marginal forwarding (ablation E6).
    pub boundary_correlation: bool,
    /// Zero-compression policy for compiled clique potentials. Logic
    /// circuits produce LIDAG CPTs that are mostly deterministic, so clique
    /// tables carry large numbers of structural zeros; compressed cliques
    /// iterate only their nonzero support during propagation. The default
    /// [`SparseMode::Auto`] compresses a clique when at least half its
    /// entries are zero. Results are bit-identical across modes.
    pub sparse: SparseMode,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            heuristic: Heuristic::MinFill,
            max_fanin: 4,
            segment_budget: 1 << 17,
            check_interval: 4,
            single_bn: false,
            boundary_correlation: true,
            sparse: SparseMode::Auto,
        }
    }
}

impl Options {
    /// Options that force one exact Bayesian network over the whole
    /// circuit, with a 2²²-state memory guard (errors with
    /// [`EstimateError::TooLarge`] beyond it).
    pub fn single_bn() -> Options {
        Options {
            single_bn: true,
            segment_budget: 1 << 22,
            ..Options::default()
        }
    }

    /// Options with an explicit per-segment state budget.
    pub fn with_budget(segment_budget: usize) -> Options {
        Options {
            segment_budget,
            ..Options::default()
        }
    }
}

/// One-shot estimation: compile the circuit's (possibly segmented)
/// LIDAG-BNs and propagate the given input statistics.
///
/// For repeated estimation under different statistics, build a
/// [`CompiledEstimator`] once and call
/// [`estimate`](CompiledEstimator::estimate) per spec — propagation is
/// orders of magnitude cheaper than compilation (paper Table 1, "Update"
/// vs "Total" columns).
///
/// # Errors
///
/// Returns [`EstimateError::InputCountMismatch`] for a wrong-size spec,
/// [`EstimateError::TooLarge`] in forced single-BN mode, and wrapped
/// circuit/BN errors.
///
/// # Example
///
/// See the [crate docs](crate).
pub fn estimate(
    circuit: &Circuit,
    spec: &InputSpec,
    options: &Options,
) -> Result<Estimate, EstimateError> {
    let compiled = CompiledEstimator::compile_for(circuit, spec, options)?;
    compiled.estimate(spec)
}

struct SegmentNet {
    /// The immutable propagation artifact: junction tree, message
    /// schedule, and initial clique potentials with *uniform* root priors
    /// baked in; the actual priors are injected per estimate as likelihood
    /// weights (mathematically identical, but reuses this cached product).
    compiled: CompiledTree,
    /// Reusable per-request propagation states. Each `run_segment` call
    /// pops one (or creates one on first use), propagates, and returns it,
    /// so steady-state estimation allocates no fresh potentials — the
    /// piece that makes concurrent batch estimation over one compile
    /// cheap.
    states: Mutex<Vec<PropagationState>>,
    /// Independent roots with provenance: marginal priors.
    solo_roots: Vec<(LineId, VarId, RootSource)>,
    /// Correlated boundary roots: conditioned on a sibling root through a
    /// pairwise joint exported by the producing segment.
    pair_roots: Vec<PairRoot>,
    /// Primary-input roots chained to a sibling of the same spatial group.
    input_pairs: Vec<InputPair>,
    /// Gate-output variables, in topological order.
    gates: Vec<(LineId, VarId)>,
    /// Pairwise joints this segment must export after calibration.
    exports: Vec<Export>,
    /// Every line with a variable in this segment (roots and gates) —
    /// consulted when later segments look for correlation parents.
    line_vars: std::collections::HashMap<LineId, VarId>,
}

/// A grouped primary-input root conditioned on the group member rooted
/// just before it in the same segment; the conditional comes from the
/// closed-form pair joint of the group model at estimate time.
struct InputPair {
    var: VarId,
    parent_var: VarId,
    child_pos: usize,
    parent_pos: usize,
    /// `Some(g)` when the conditional comes from spatial group `g`'s
    /// model; `None` when it comes from the spec's explicit joint for
    /// `child_pos`.
    group: Option<usize>,
}

/// A boundary root whose prior is `P(line | parent line)`, restoring the
/// pairwise dependence the producing segment knew about.
struct PairRoot {
    var: VarId,
    parent_var: VarId,
    /// Index into the estimate-time conditional store.
    slot: usize,
}

/// A `(parent, child)` joint the owning (producing) segment computes after
/// calibration for a later segment's [`PairRoot`].
struct Export {
    parent_var: VarId,
    child_var: VarId,
    slot: usize,
}

/// Everything one segment's propagation produces, merged into the global
/// state after the segment (or its whole wave) finishes.
struct SegmentOutput {
    gate_dists: Vec<(LineId, TransitionDist)>,
    exports: Vec<(usize, [f64; 16])>,
    joints: Vec<(usize, [[f64; 4]; 4])>,
}

fn apply_segment_output(
    output: SegmentOutput,
    dists: &mut [TransitionDist],
    known: &mut [bool],
    conditionals: &mut [Option<[f64; 16]>],
    joints: &mut [Option<[[f64; 4]; 4]>],
) {
    for (line, dist) in output.gate_dists {
        dists[line.index()] = dist;
        known[line.index()] = true;
    }
    for (slot, cond) in output.exports {
        conditionals[slot] = Some(cond);
    }
    for (idx, joint) in output.joints {
        joints[idx] = Some(joint);
    }
}

/// Initializes, calibrates, and reads out one segment's Bayesian network.
/// Pure with respect to the global state (reads `dists`/`conditionals`,
/// returns its contributions), so segments within a wave can run on
/// separate threads.
fn run_segment(
    segment: &SegmentNet,
    spec: &InputSpec,
    dists: &[TransitionDist],
    conditionals: &[Option<[f64; 16]>],
    joint_requests: &[(VarId, VarId, usize)],
) -> Result<SegmentOutput, EstimateError> {
    let compiled = &segment.compiled;
    // Reuse a pooled per-request state when one is available; its buffers
    // survive across requests, so a warm pool propagates without
    // allocating new potentials.
    let mut state = {
        let mut pool = segment.states.lock().expect("state pool lock");
        pool.pop()
    }
    .unwrap_or_else(|| compiled.new_state());
    state.clear_evidence();
    // The cached potentials carry uniform (1/4) root priors; weighting
    // state s by 4*P(s) as likelihood evidence reproduces the exact
    // prior after normalization.
    for &(line, var, source) in &segment.solo_roots {
        let prior = match source {
            RootSource::PrimaryInput(pos) => spec.prior_row(pos),
            RootSource::Boundary => dists[line.index()].as_array().to_vec(),
        };
        compiled.set_likelihood(&mut state, var, prior.iter().map(|p| 4.0 * p).collect())?;
    }
    // Grouped primary inputs: inject 4*P(child | parent) from the
    // closed-form pair joint of the group model; explicitly paired inputs
    // take their conditional from the spec.
    for pair in &segment.input_pairs {
        let rows: [[f64; 4]; 4] = match pair.group {
            Some(group) => {
                let joint = spec.groups()[group]
                    .member_pair_joint(spec.model(pair.parent_pos), spec.model(pair.child_pos));
                let mut rows = [[0.25f64; 4]; 4];
                for (a, row) in joint.iter().enumerate() {
                    let mass: f64 = row.iter().sum();
                    if mass > 0.0 {
                        for (b, &p) in row.iter().enumerate() {
                            rows[a][b] = p / mass;
                        }
                    }
                }
                rows
            }
            None => spec
                .pair_conditioning(pair.child_pos)
                .expect("signature guarantees the pair exists")
                .conditional_rows(),
        };
        let mut values = Vec::with_capacity(16);
        for row in &rows {
            for &conditional in row {
                values.push(4.0 * conditional);
            }
        }
        debug_assert!(pair.parent_var < pair.var);
        compiled.insert_factor(
            &mut state,
            Factor::new(vec![(pair.parent_var, 4), (pair.var, 4)], values),
        )?;
    }
    // Correlated boundary roots: multiply 4*P(c|p) over the cached
    // uniform conditional, restoring the producer's pairwise joint.
    for pair in &segment.pair_roots {
        let cond = conditionals[pair.slot].expect("producer wave precedes consumers");
        debug_assert!(
            pair.parent_var < pair.var,
            "children are added after parents"
        );
        let values: Vec<f64> = cond.iter().map(|&p| 4.0 * p).collect();
        compiled.insert_factor(
            &mut state,
            Factor::new(vec![(pair.parent_var, 4), (pair.var, 4)], values),
        )?;
    }
    compiled.calibrate(&mut state);
    let gate_dists = segment
        .gates
        .iter()
        .map(|&(line, var)| {
            let m = compiled.marginal(&state, var);
            (line, TransitionDist::new([m[0], m[1], m[2], m[3]]))
        })
        .collect();
    // Serve requested line-pair joints from this segment.
    let mut joints = Vec::new();
    for &(var_a, var_b, idx) in joint_requests {
        if var_a == var_b {
            continue;
        }
        if let Some(joint) = compiled.pairwise_marginal(&state, var_a, var_b) {
            let a_first = joint.vars()[0] == var_a;
            let mut out = [[0.0f64; 4]; 4];
            for (a_state, row) in out.iter_mut().enumerate() {
                for (b_state, slot) in row.iter_mut().enumerate() {
                    let k = if a_first {
                        a_state * 4 + b_state
                    } else {
                        b_state * 4 + a_state
                    };
                    *slot = joint.values()[k];
                }
            }
            joints.push((idx, out));
        }
    }
    // Export pairwise joints for later segments.
    let mut exports = Vec::new();
    for export in &segment.exports {
        let joint = compiled
            .pairwise_marginal(&state, export.parent_var, export.child_var)
            .expect("export pairs share a component by construction");
        let parent_first = joint.vars()[0] == export.parent_var;
        let mut cond = [0.0f64; 16];
        for p in 0..4 {
            let mut row = [0.0f64; 4];
            for (c, slot) in row.iter_mut().enumerate() {
                let idx = if parent_first { p * 4 + c } else { c * 4 + p };
                *slot = joint.values()[idx];
            }
            let mass: f64 = row.iter().sum();
            for (c, &v) in row.iter().enumerate() {
                // Zero-mass parent states get a uniform row; they never
                // matter because P(parent = p) is zero.
                cond[p * 4 + c] = if mass > 0.0 { v / mass } else { 0.25 };
            }
        }
        exports.push((export.slot, cond));
    }
    segment.states.lock().expect("state pool lock").push(state);
    Ok(SegmentOutput {
        gate_dists,
        exports,
        joints,
    })
}

/// A circuit whose segment Bayesian networks and junction trees have been
/// compiled once and can be re-propagated cheaply for any input statistics.
///
/// # Example
///
/// ```
/// use swact::{CompiledEstimator, InputSpec, Options};
/// use swact_circuit::catalog;
///
/// # fn main() -> Result<(), swact::EstimateError> {
/// let c17 = catalog::c17();
/// let compiled = CompiledEstimator::compile(&c17, &Options::default())?;
/// let uniform = compiled.estimate(&InputSpec::uniform(5))?;
/// let biased = compiled.estimate(&InputSpec::independent(vec![0.9; 5]))?;
/// assert_ne!(
///     uniform.switching(c17.outputs()[0]),
///     biased.switching(c17.outputs()[0]),
/// );
/// # Ok(())
/// # }
/// ```
pub struct CompiledEstimator {
    working: Circuit,
    /// Original line index → working line index.
    line_map: Vec<usize>,
    segments: Vec<SegmentNet>,
    /// Number of cross-segment conditional slots.
    num_slots: usize,
    /// Input-group membership the networks were compiled for.
    group_signature: Vec<Vec<usize>>,
    /// Pairwise-joint edges (a, b) the networks were compiled for.
    pair_signature: Vec<(usize, usize)>,
    /// Segments grouped into dependency waves: every segment's boundary
    /// producers live in strictly earlier waves, so segments within one
    /// wave are independent and propagate in parallel.
    waves: Vec<Vec<usize>>,
    compile_time: Duration,
    total_states: f64,
    max_clique_states: f64,
    options: Options,
}

impl std::fmt::Debug for CompiledEstimator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledEstimator")
            .field("working_lines", &self.working.num_lines())
            .field("segments", &self.segments.len())
            .field("total_states", &self.total_states)
            .field("compile_time", &self.compile_time)
            .finish()
    }
}

impl CompiledEstimator {
    /// Compiles the circuit: fan-in decomposition, segmentation planning,
    /// per-segment LIDAG construction and junction-tree compilation.
    ///
    /// # Errors
    ///
    /// Returns [`EstimateError::TooLarge`] when `options.single_bn` is set
    /// and the whole-circuit tree exceeds the budget, or wrapped
    /// circuit/BN errors.
    pub fn compile(
        circuit: &Circuit,
        options: &Options,
    ) -> Result<CompiledEstimator, EstimateError> {
        CompiledEstimator::compile_impl(circuit, &[], &[], Vec::new(), Vec::new(), options)
    }

    /// Compiles the circuit *for a given input specification*: in addition
    /// to everything [`compile`](CompiledEstimator::compile) does, members
    /// of the spec's [`InputGroup`](crate::InputGroup)s are chained inside
    /// every segment so their spatial correlation is modeled exactly
    /// (pairwise). The group *membership* becomes part of the compiled
    /// structure; later [`estimate`](CompiledEstimator::estimate) calls may
    /// change all probabilities but must keep the same groups.
    ///
    /// # Errors
    ///
    /// Same as [`compile`](CompiledEstimator::compile).
    pub fn compile_for(
        circuit: &Circuit,
        spec: &InputSpec,
        options: &Options,
    ) -> Result<CompiledEstimator, EstimateError> {
        let mut group_of = vec![None; circuit.num_inputs()];
        for (g, group) in spec.groups().iter().enumerate() {
            for &member in &group.members {
                group_of[member] = Some(g);
            }
        }
        let mut pair_parent_of = vec![None; circuit.num_inputs()];
        for pair in spec.pairwise_joints() {
            pair_parent_of[pair.b] = Some(pair.a);
        }
        let signature = spec.groups().iter().map(|g| g.members.clone()).collect();
        let pair_signature = spec.pairwise_joints().iter().map(|p| (p.a, p.b)).collect();
        CompiledEstimator::compile_impl(
            circuit,
            &group_of,
            &pair_parent_of,
            signature,
            pair_signature,
            options,
        )
    }

    fn compile_impl(
        circuit: &Circuit,
        group_of: &[Option<usize>],
        pair_parent_of: &[Option<usize>],
        group_signature: Vec<Vec<usize>>,
        pair_signature: Vec<(usize, usize)>,
        options: &Options,
    ) -> Result<CompiledEstimator, EstimateError> {
        let start = Instant::now();
        let working = decompose_fanin(circuit, options.max_fanin.max(2))?;
        let plan = if options.single_bn {
            SegmentationPlan::plan(&working, 4, usize::MAX, usize::MAX - 1, options.heuristic)
        } else {
            SegmentationPlan::plan(
                &working,
                4,
                options.segment_budget,
                options.check_interval,
                options.heuristic,
            )
        };

        let mut segments: Vec<SegmentNet> = Vec::with_capacity(plan.segments().len());
        let mut total_states = 0.0;
        let mut max_clique_states = 0.0f64;
        let mut num_slots = 0usize;
        // Where each gate line was produced: (segment index, var there).
        let mut produced_in: std::collections::HashMap<LineId, (usize, VarId)> =
            std::collections::HashMap::new();
        // Per segment: the producer segments its boundary roots come from.
        let mut seg_deps: Vec<std::collections::HashSet<usize>> = Vec::new();
        for seg in plan.segments() {
            let seg_idx = segments.len();
            seg_deps.push(
                seg.roots
                    .iter()
                    .filter(|(_, source)| *source == RootSource::Boundary)
                    .map(|(line, _)| produced_in[line].0)
                    .collect(),
            );
            // Assign boundary-correlation parents: a boundary root may be
            // conditioned on an earlier boundary root of this segment when
            // both were produced in the same earlier segment and share a
            // clique there (so that segment can export their exact joint).
            let mut parent_of: std::collections::HashMap<LineId, LineId> =
                std::collections::HashMap::new();
            // Per paired child line: (producer segment, parent var there,
            // child var there) — the joint the producer must export.
            let mut pair_info: std::collections::HashMap<LineId, (usize, VarId, VarId)> =
                std::collections::HashMap::new();
            if options.boundary_correlation {
                // Each correlated boundary root is conditioned on ONE
                // earlier root of this segment — the structurally closest
                // line (smallest clique distance) that also has a variable
                // in the producing segment. Primary inputs qualify too:
                // a boundary line is often most correlated with the very
                // inputs it computes, and those reappear here as roots.
                // Parents must themselves be plain roots (no chains) and
                // serve at most two children, so the extra edges stay
                // tree-ish and cannot explode the consumer's width.
                let mut children_of: std::collections::HashMap<LineId, usize> =
                    std::collections::HashMap::new();
                let mut earlier: Vec<LineId> = Vec::new();
                for &(line, source) in &seg.roots {
                    if source == RootSource::Boundary {
                        let (producer, child_var) = produced_in[&line];
                        let producer_seg = &segments[producer];
                        let producer_tree = producer_seg.compiled.tree();
                        let child_home = producer_tree.home_clique(child_var);
                        let mut best: Option<(usize, LineId)> = None;
                        for &candidate in &earlier {
                            if parent_of.contains_key(&candidate)
                                || children_of.get(&candidate).copied().unwrap_or(0) >= 2
                            {
                                continue;
                            }
                            let Some(&cand_var) = producer_seg.line_vars.get(&candidate) else {
                                continue;
                            };
                            let cand_home = producer_tree.home_clique(cand_var);
                            if let Some(d) = producer_tree.clique_distance(child_home, cand_home) {
                                if best.is_none_or(|(bd, _)| d < bd) {
                                    best = Some((d, candidate));
                                }
                            }
                        }
                        if let Some((_, parent)) = best {
                            parent_of.insert(line, parent);
                            *children_of.entry(parent).or_default() += 1;
                            pair_info.insert(
                                line,
                                (producer, segments[producer].line_vars[&parent], child_var),
                            );
                        }
                    }
                    earlier.push(line);
                }
            }

            struct Built {
                net: BayesNet,
                tree: JunctionTree,
                solo_roots: Vec<(LineId, VarId, RootSource)>,
                pair_roots: Vec<PairRoot>,
                input_pairs: Vec<InputPair>,
                exports_by_producer: Vec<(usize, Export)>,
                gates: Vec<(LineId, VarId)>,
                line_vars: std::collections::HashMap<LineId, VarId>,
            }
            let build = |parent_of: &std::collections::HashMap<LineId, LineId>,
                         slot_base: usize|
             -> Result<Built, EstimateError> {
                let mut net = BayesNet::new();
                let mut solo_roots = Vec::new();
                let mut pair_roots: Vec<PairRoot> = Vec::new();
                let mut input_pairs: Vec<InputPair> = Vec::new();
                let mut exports_by_producer: Vec<(usize, Export)> = Vec::new();
                let mut var_of: std::collections::HashMap<LineId, VarId> =
                    std::collections::HashMap::new();
                // Per spatial group: the member most recently rooted in
                // this segment, to chain the next member onto.
                let mut last_group_member: std::collections::HashMap<usize, (VarId, usize)> =
                    std::collections::HashMap::new();
                // Reorder roots so explicit pairwise-joint parents precede
                // their children (the edges form a forest, so a DFS emit
                // terminates).
                let root_entries: Vec<(LineId, RootSource)> = {
                    let by_pos: std::collections::HashMap<usize, (LineId, RootSource)> = seg
                        .roots
                        .iter()
                        .filter_map(|&(line, source)| match source {
                            RootSource::PrimaryInput(pos) => Some((pos, (line, source))),
                            RootSource::Boundary => None,
                        })
                        .collect();
                    let mut emitted: std::collections::HashSet<LineId> =
                        std::collections::HashSet::new();
                    let mut ordered = Vec::with_capacity(seg.roots.len());
                    for &(line, source) in &seg.roots {
                        let mut chain = vec![(line, source)];
                        if let RootSource::PrimaryInput(mut pos) = source {
                            while let Some(&Some(parent_pos)) = pair_parent_of.get(pos) {
                                match by_pos.get(&parent_pos) {
                                    Some(&entry) => chain.push(entry),
                                    None => break,
                                }
                                pos = parent_pos;
                            }
                        }
                        for &entry in chain.iter().rev() {
                            if emitted.insert(entry.0) {
                                ordered.push(entry);
                            }
                        }
                    }
                    ordered
                };
                for &(line, source) in &root_entries {
                    if let Some(&parent_line) = parent_of.get(&line) {
                        let parent_var = var_of[&parent_line];
                        // Placeholder uniform conditional; the real
                        // P(child | parent) is injected per estimate.
                        let var = net.add_var(
                            working.line_name(line),
                            4,
                            &[parent_var],
                            Cpt::rows(vec![vec![0.25; 4]; 4]),
                        )?;
                        var_of.insert(line, var);
                        let slot = slot_base + pair_roots.len();
                        pair_roots.push(PairRoot {
                            var,
                            parent_var,
                            slot,
                        });
                        let (producer, producer_parent, producer_child) = pair_info[&line];
                        exports_by_producer.push((
                            producer,
                            Export {
                                parent_var: producer_parent,
                                child_var: producer_child,
                                slot,
                            },
                        ));
                        continue;
                    }
                    // Grouped primary inputs chain onto the group member
                    // rooted just before them in this segment; explicitly
                    // paired inputs chain onto their conditioning input.
                    if let RootSource::PrimaryInput(pos) = source {
                        if let Some(&Some(parent_pos)) = pair_parent_of.get(pos) {
                            let parent_line = working.inputs()[parent_pos];
                            if let Some(&parent_var) = var_of.get(&parent_line) {
                                let var = net.add_var(
                                    working.line_name(line),
                                    4,
                                    &[parent_var],
                                    Cpt::rows(vec![vec![0.25; 4]; 4]),
                                )?;
                                var_of.insert(line, var);
                                input_pairs.push(InputPair {
                                    var,
                                    parent_var,
                                    child_pos: pos,
                                    parent_pos,
                                    group: None,
                                });
                                continue;
                            }
                        }
                        if let Some(&Some(group)) = group_of.get(pos) {
                            if let Some(&(parent_var, parent_pos)) = last_group_member.get(&group) {
                                let var = net.add_var(
                                    working.line_name(line),
                                    4,
                                    &[parent_var],
                                    Cpt::rows(vec![vec![0.25; 4]; 4]),
                                )?;
                                var_of.insert(line, var);
                                input_pairs.push(InputPair {
                                    var,
                                    parent_var,
                                    child_pos: pos,
                                    parent_pos,
                                    group: Some(group),
                                });
                                last_group_member.insert(group, (var, pos));
                                continue;
                            }
                        }
                    }
                    // Placeholder uniform prior; weighted per estimate.
                    let var =
                        net.add_var(working.line_name(line), 4, &[], Cpt::prior(vec![0.25; 4]))?;
                    var_of.insert(line, var);
                    if let RootSource::PrimaryInput(pos) = source {
                        if let Some(&Some(group)) = group_of.get(pos) {
                            last_group_member.insert(group, (var, pos));
                        }
                    }
                    solo_roots.push((line, var, source));
                }
                let mut gates = Vec::with_capacity(seg.gates.len());
                for &line in &seg.gates {
                    let gate = working.gate(line).expect("planned lines are gates");
                    let (unique_inputs, cpt) = crate::gate_family(gate.kind, &gate.inputs);
                    let parents: Vec<VarId> = unique_inputs.iter().map(|l| var_of[l]).collect();
                    let var = net.add_var(working.line_name(line), 4, &parents, cpt)?;
                    var_of.insert(line, var);
                    gates.push((line, var));
                }
                let tree = JunctionTree::compile_with(&net, options.heuristic)?;
                Ok(Built {
                    net,
                    tree,
                    solo_roots,
                    pair_roots,
                    input_pairs,
                    exports_by_producer,
                    gates,
                    line_vars: var_of,
                })
            };

            let mut built = build(&parent_of, num_slots)?;
            // Boundary-correlation edges can widen the tree; if the blowup
            // is severe, fall back to plain marginal forwarding for this
            // segment (keeping the planned budget meaningful).
            if !built.pair_roots.is_empty()
                && !options.single_bn
                && built.tree.total_states() > 4.0 * options.segment_budget as f64
            {
                built = build(&std::collections::HashMap::new(), num_slots)?;
            }
            num_slots += built.pair_roots.len();
            for &(line, var) in &built.gates {
                produced_in.insert(line, (seg_idx, var));
            }
            total_states += built.tree.total_states();
            max_clique_states = max_clique_states.max(built.tree.max_clique_states());
            if options.single_bn && total_states > options.segment_budget as f64 {
                return Err(EstimateError::TooLarge {
                    states: total_states,
                    budget: options.segment_budget as f64,
                });
            }
            let init_potentials = initial_potentials(&built.tree, &built.net);
            for (producer, export) in built.exports_by_producer {
                segments[producer].exports.push(export);
            }
            segments.push(SegmentNet {
                compiled: CompiledTree::from_parts_with(
                    built.tree,
                    init_potentials,
                    options.sparse,
                ),
                states: Mutex::new(Vec::new()),
                solo_roots: built.solo_roots,
                pair_roots: built.pair_roots,
                input_pairs: built.input_pairs,
                gates: built.gates,
                exports: Vec::new(),
                line_vars: built.line_vars,
            });
        }
        // Dependency waves: wave(s) = 1 + max(wave of producers).
        let mut wave_of = vec![0usize; segments.len()];
        for (s_idx, deps) in seg_deps.iter().enumerate() {
            wave_of[s_idx] = deps.iter().map(|&d| wave_of[d] + 1).max().unwrap_or(0);
        }
        let num_waves = wave_of.iter().max().map_or(0, |&w| w + 1);
        let mut waves: Vec<Vec<usize>> = vec![Vec::new(); num_waves];
        for (s_idx, &w) in wave_of.iter().enumerate() {
            waves[w].push(s_idx);
        }
        let line_map = (0..circuit.num_lines())
            .map(|i| {
                working
                    .find_line(circuit.line_name(LineId::from_index(i)))
                    .expect("decomposition preserves line names")
                    .index()
            })
            .collect();
        Ok(CompiledEstimator {
            working,
            line_map,
            segments,
            num_slots,
            group_signature,
            pair_signature,
            waves,
            compile_time: start.elapsed(),
            total_states,
            max_clique_states,
            options: *options,
        })
    }

    /// Propagates `spec` through the compiled trees and collects per-line
    /// transition distributions.
    ///
    /// Takes `&self`: the compiled trees are immutable and each
    /// propagation works on its own pooled [`PropagationState`], so
    /// sessions may run concurrently from multiple threads over one
    /// compiled estimator (the `swact-engine` crate builds on exactly
    /// this).
    ///
    /// # Errors
    ///
    /// Returns [`EstimateError::InputCountMismatch`] for a wrong-size spec.
    pub fn estimate(&self, spec: &InputSpec) -> Result<Estimate, EstimateError> {
        Ok(self.estimate_with_line_joints(spec, &[])?.0)
    }

    /// Deprecated alias of [`estimate`](CompiledEstimator::estimate) from
    /// when propagation needed exclusive access.
    #[deprecated(since = "0.1.0", note = "estimate now takes &self; call it directly")]
    pub fn estimate_mut(&mut self, spec: &InputSpec) -> Result<Estimate, EstimateError> {
        self.estimate(spec)
    }

    /// Deprecated alias of
    /// [`estimate_with_line_joints`](CompiledEstimator::estimate_with_line_joints)
    /// from when propagation needed exclusive access.
    #[deprecated(
        since = "0.1.0",
        note = "estimate_with_line_joints now takes &self; call it directly"
    )]
    #[allow(clippy::type_complexity)]
    pub fn estimate_with_line_joints_mut(
        &mut self,
        spec: &InputSpec,
        line_pairs: &[(LineId, LineId)],
    ) -> Result<(Estimate, Vec<Option<[[f64; 4]; 4]>>), EstimateError> {
        self.estimate_with_line_joints(spec, line_pairs)
    }

    /// Like [`estimate`](CompiledEstimator::estimate), but additionally
    /// returns the estimated 4×4 joint transition distribution for each
    /// requested (original-circuit) line pair — `None` when the two lines
    /// never share a segment's Bayesian network (their joint is then
    /// simply the product of marginals under this model). Joints come from
    /// exact pairwise marginalization over the first segment containing
    /// both lines.
    ///
    /// The sequential estimator uses this to feed register-pair
    /// correlation back between fixed-point iterations.
    ///
    /// # Errors
    ///
    /// Same as [`estimate`](CompiledEstimator::estimate).
    #[allow(clippy::type_complexity)]
    pub fn estimate_with_line_joints(
        &self,
        spec: &InputSpec,
        line_pairs: &[(LineId, LineId)],
    ) -> Result<(Estimate, Vec<Option<[[f64; 4]; 4]>>), EstimateError> {
        if spec.len() != self.working.num_inputs() {
            return Err(EstimateError::InputCountMismatch {
                circuit: self.working.num_inputs(),
                spec: spec.len(),
            });
        }
        let spec_signature: Vec<Vec<usize>> =
            spec.groups().iter().map(|g| g.members.clone()).collect();
        if spec_signature != self.group_signature {
            return Err(EstimateError::GroupStructureMismatch);
        }
        let spec_pairs: Vec<(usize, usize)> =
            spec.pairwise_joints().iter().map(|p| (p.a, p.b)).collect();
        if spec_pairs != self.pair_signature {
            return Err(EstimateError::GroupStructureMismatch);
        }
        let start = Instant::now();
        let placeholder = TransitionDist::new([1.0, 0.0, 0.0, 0.0]);
        let mut dists: Vec<TransitionDist> = vec![placeholder; self.working.num_lines()];
        let mut known = vec![false; self.working.num_lines()];
        // Primary inputs take their (group-adjusted) spec distribution.
        for (i, &pi) in self.working.inputs().iter().enumerate() {
            dists[pi.index()] = spec.effective_distribution(i);
            known[pi.index()] = true;
        }
        // Cross-segment conditionals, filled by producers before consumers
        // run (segments are in topological order). Each entry holds
        // `P(child = c | parent = p)` flattened as `p·4 + c`.
        let mut conditionals: Vec<Option<[f64; 16]>> = vec![None; self.num_slots];
        // Requested line-pair joints: (segment, var_a, var_b, request idx).
        let mut joint_requests: Vec<Vec<(VarId, VarId, usize)>> =
            vec![Vec::new(); self.segments.len()];
        let mut joints: Vec<Option<[[f64; 4]; 4]>> = vec![None; line_pairs.len()];
        for (idx, &(a, b)) in line_pairs.iter().enumerate() {
            let wa = LineId::from_index(self.line_map[a.index()]);
            let wb = LineId::from_index(self.line_map[b.index()]);
            if let Some(seg_idx) = self
                .segments
                .iter()
                .position(|seg| seg.line_vars.contains_key(&wa) && seg.line_vars.contains_key(&wb))
            {
                let seg = &self.segments[seg_idx];
                joint_requests[seg_idx].push((seg.line_vars[&wa], seg.line_vars[&wb], idx));
            }
        }
        for wave in &self.waves {
            if wave.len() == 1 {
                let seg_idx = wave[0];
                let output = run_segment(
                    &self.segments[seg_idx],
                    spec,
                    &dists,
                    &conditionals,
                    &joint_requests[seg_idx],
                )?;
                apply_segment_output(
                    output,
                    &mut dists,
                    &mut known,
                    &mut conditionals,
                    &mut joints,
                );
                continue;
            }
            // Independent segments (no boundary lines between them)
            // propagate concurrently — the paper's §5 observation that
            // junction-tree messages on disjoint branches are independent,
            // lifted to segment granularity.
            let segments = &self.segments;
            let dists_ref = &dists;
            let conditionals_ref = &conditionals;
            let joint_requests_ref = &joint_requests;
            let outputs: Vec<Result<SegmentOutput, EstimateError>> = std::thread::scope(|scope| {
                let handles: Vec<_> = wave
                    .iter()
                    .map(|&seg_idx| {
                        scope.spawn(move || {
                            run_segment(
                                &segments[seg_idx],
                                spec,
                                dists_ref,
                                conditionals_ref,
                                &joint_requests_ref[seg_idx],
                            )
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("segment worker never panics"))
                    .collect()
            });
            for output in outputs {
                apply_segment_output(
                    output?,
                    &mut dists,
                    &mut known,
                    &mut conditionals,
                    &mut joints,
                );
            }
        }
        let propagate_time = start.elapsed();
        debug_assert!(known.iter().all(|&k| k), "every line estimated");
        let estimate = Estimate::new(
            dists,
            self.line_map.clone(),
            self.compile_time,
            propagate_time,
            self.segments.len(),
            self.total_states,
            self.max_clique_states,
        );
        Ok((estimate, joints))
    }

    /// The working (fan-in-decomposed) circuit the estimator runs over.
    pub fn working_circuit(&self) -> &Circuit {
        &self.working
    }

    /// Number of segments (Bayesian networks) the circuit was split into.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Compilation wall-clock time.
    pub fn compile_time(&self) -> Duration {
        self.compile_time
    }

    /// Total junction-tree state count across segments.
    pub fn total_states(&self) -> f64 {
        self.total_states
    }

    /// Largest clique state count across segments.
    pub fn max_clique_states(&self) -> f64 {
        self.max_clique_states
    }

    /// Total number of nonzero initial clique-potential entries across
    /// segments — the work the propagation hot path actually touches once
    /// zero-compressed cliques skip their structural zeros.
    pub fn nnz(&self) -> usize {
        self.segments.iter().map(|s| s.compiled.nnz()).sum()
    }

    /// Fraction of compiled clique-potential entries that are structural
    /// zeros (deterministic-CPT induced); `0.0` for an empty estimator.
    pub fn zero_fraction(&self) -> f64 {
        let states: usize = self.segments.iter().map(|s| s.compiled.state_space()).sum();
        if states == 0 {
            return 0.0;
        }
        1.0 - self.nnz() as f64 / states as f64
    }

    /// Number of cliques stored in zero-compressed form.
    pub fn compressed_cliques(&self) -> usize {
        self.segments
            .iter()
            .map(|s| s.compiled.compressed_cliques())
            .sum()
    }

    /// The options the estimator was compiled with.
    pub fn options(&self) -> &Options {
        &self.options
    }

    /// Number of boundary roots entering later segments with a forwarded
    /// pairwise joint (vs. an independent marginal).
    pub fn num_correlated_boundaries(&self) -> usize {
        self.num_slots
    }

    /// Number of dependency waves segments are scheduled into; segments
    /// within a wave propagate on separate threads.
    pub fn num_waves(&self) -> usize {
        self.waves.len()
    }

    /// Total number of boundary-root connections across segments.
    pub fn num_boundary_roots(&self) -> usize {
        self.segments
            .iter()
            .map(|s| {
                s.pair_roots.len()
                    + s.solo_roots
                        .iter()
                        .filter(|(_, _, src)| *src == RootSource::Boundary)
                        .count()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Transition;
    use swact_circuit::{catalog, CircuitBuilder, GateKind};

    /// Brute-force exact switching by enumerating all (prev, next) input
    /// pairs weighted by the spec.
    fn exhaustive_switching(circuit: &Circuit, spec: &InputSpec) -> Vec<f64> {
        let n = circuit.num_inputs();
        assert!(
            2 * n <= 20,
            "exhaustive reference limited to small circuits"
        );
        let order = circuit.topo_order();
        let eval = |assignment: &[bool]| -> Vec<bool> {
            let mut values = vec![false; circuit.num_lines()];
            for (i, &pi) in circuit.inputs().iter().enumerate() {
                values[pi.index()] = assignment[i];
            }
            for &line in &order {
                if let Some(g) = circuit.gate(line) {
                    values[line.index()] = g.kind.eval(g.inputs.iter().map(|&l| values[l.index()]));
                }
            }
            values
        };
        let mut switching = vec![0.0; circuit.num_lines()];
        for prev_case in 0..1usize << n {
            let prev: Vec<bool> = (0..n).map(|i| prev_case >> i & 1 == 1).collect();
            let prev_vals = eval(&prev);
            for next_case in 0..1usize << n {
                let next: Vec<bool> = (0..n).map(|i| next_case >> i & 1 == 1).collect();
                let mut weight = 1.0;
                for i in 0..n {
                    let t = Transition::from_values(prev[i], next[i]);
                    weight *= spec.model(i).to_distribution().p(t);
                }
                if weight == 0.0 {
                    continue;
                }
                let next_vals = eval(&next);
                for line in circuit.line_ids() {
                    if prev_vals[line.index()] != next_vals[line.index()] {
                        switching[line.index()] += weight;
                    }
                }
            }
        }
        switching
    }

    #[test]
    fn single_bn_estimate_is_exact_on_c17() {
        let c17 = catalog::c17();
        let spec = InputSpec::uniform(5);
        let est = estimate(&c17, &spec, &Options::single_bn()).unwrap();
        assert_eq!(est.num_segments(), 1);
        let exact = exhaustive_switching(&c17, &spec);
        for line in c17.line_ids() {
            assert!(
                (est.switching(line) - exact[line.index()]).abs() < 1e-9,
                "line {}: {} vs {}",
                c17.line_name(line),
                est.switching(line),
                exact[line.index()]
            );
        }
    }

    #[test]
    fn exact_under_biased_and_correlated_inputs() {
        let c17 = catalog::c17();
        let spec = InputSpec::from_models(vec![
            crate::InputModel::new(0.3, 0.2).unwrap(),
            crate::InputModel::independent(0.9),
            crate::InputModel::new(0.5, 0.1).unwrap(),
            crate::InputModel::independent(0.2),
            crate::InputModel::new(0.7, 0.3).unwrap(),
        ]);
        let est = estimate(&c17, &spec, &Options::single_bn()).unwrap();
        let exact = exhaustive_switching(&c17, &spec);
        for line in c17.line_ids() {
            assert!(
                (est.switching(line) - exact[line.index()]).abs() < 1e-9,
                "line {}",
                c17.line_name(line)
            );
        }
    }

    #[test]
    fn exact_on_paper_example() {
        let circuit = catalog::paper_example();
        let spec = InputSpec::independent([0.4, 0.6, 0.5, 0.3]);
        let est = estimate(&circuit, &spec, &Options::single_bn()).unwrap();
        let exact = exhaustive_switching(&circuit, &spec);
        for line in circuit.line_ids() {
            assert!((est.switching(line) - exact[line.index()]).abs() < 1e-9);
        }
    }

    #[test]
    fn reconvergent_fanout_handled_exactly() {
        // The regime where independence assumptions fail: shared inputs.
        let c = swact_circuit::benchgen::reconvergent("rc", 4, 3, 11);
        let spec = InputSpec::uniform(4);
        let est = estimate(&c, &spec, &Options::single_bn()).unwrap();
        let exact = exhaustive_switching(&c, &spec);
        for line in c.line_ids() {
            assert!(
                (est.switching(line) - exact[line.index()]).abs() < 1e-9,
                "line {}",
                c.line_name(line)
            );
        }
    }

    #[test]
    fn segmentation_error_is_small() {
        // Force many segments on a circuit small enough for the exhaustive
        // reference, and check the boundary-induced error stays tiny.
        let c = swact_circuit::benchgen::generate(&swact_circuit::benchgen::GeneratorConfig {
            inputs: 8,
            outputs: 3,
            gates: 40,
            ..swact_circuit::benchgen::GeneratorConfig::default_for("segtest")
        });
        let spec = InputSpec::uniform(8);
        let exact = exhaustive_switching(&c, &spec);
        let run = |budget: usize| {
            let est = estimate(
                &c,
                &spec,
                &Options {
                    segment_budget: budget,
                    check_interval: 1,
                    ..Options::default()
                },
            )
            .unwrap();
            let stats = est.compare(&exact);
            (est.num_segments(), stats)
        };
        let (segments_small, stats_small) = run(1 << 9);
        assert!(segments_small > 1, "budget must force splitting");
        // Boundary-marginal forwarding keeps node errors modest even with
        // absurdly tiny segments, and the circuit-average stays tight
        // (the paper's σ ~ 1e-3 regime corresponds to far larger budgets).
        assert!(
            stats_small.mean_abs_error < 0.05,
            "mean segmentation error {}",
            stats_small.mean_abs_error
        );
        assert!(
            stats_small.max_abs_error < 0.25,
            "worst segmentation error {}",
            stats_small.max_abs_error
        );
        // A larger budget gives fewer segments and no worse average error.
        let (segments_large, stats_large) = run(1 << 18);
        assert!(segments_large < segments_small);
        assert!(stats_large.mean_abs_error <= stats_small.mean_abs_error + 1e-3);
    }

    #[test]
    fn compiled_estimator_repropagates_consistently() {
        let c17 = catalog::c17();
        let compiled = CompiledEstimator::compile(&c17, &Options::default()).unwrap();
        let spec_a = InputSpec::uniform(5);
        let spec_b = InputSpec::independent([0.8, 0.2, 0.5, 0.9, 0.1]);
        let first = compiled.estimate(&spec_a).unwrap();
        let _second = compiled.estimate(&spec_b).unwrap();
        let third = compiled.estimate(&spec_a).unwrap();
        for line in c17.line_ids() {
            assert!(
                (first.switching(line) - third.switching(line)).abs() < 1e-12,
                "re-propagation must be idempotent"
            );
        }
    }

    #[test]
    fn single_bn_too_large_is_reported() {
        let c = catalog::benchmark("c880").unwrap();
        let result = estimate(
            &c,
            &InputSpec::uniform(c.num_inputs()),
            &Options {
                single_bn: true,
                // Even a tree-shaped 383-gate circuit needs far more than
                // 2⁸ junction-tree states.
                segment_budget: 1 << 8,
                ..Options::default()
            },
        );
        assert!(matches!(result, Err(EstimateError::TooLarge { .. })));
    }

    #[test]
    fn spec_size_checked() {
        let c17 = catalog::c17();
        assert!(matches!(
            estimate(&c17, &InputSpec::uniform(4), &Options::default()),
            Err(EstimateError::InputCountMismatch { .. })
        ));
    }

    #[test]
    fn frozen_inputs_produce_zero_switching() {
        let c17 = catalog::c17();
        let spec = InputSpec::from_models(vec![crate::InputModel::new(0.5, 0.0).unwrap(); 5]);
        let est = estimate(&c17, &spec, &Options::default()).unwrap();
        for line in c17.line_ids() {
            assert!(est.switching(line).abs() < 1e-12);
        }
    }

    #[test]
    fn wide_gate_circuit_estimates_match_exhaustive() {
        let mut b = CircuitBuilder::new("wide");
        for n in ["a", "b", "c", "d", "e"] {
            b.input(n).unwrap();
        }
        b.gate("y", GateKind::Nor, &["a", "b", "c", "d", "e"])
            .unwrap();
        b.gate("z", GateKind::Xor, &["y", "a"]).unwrap();
        b.output("z").unwrap();
        let c = b.finish().unwrap();
        let spec = InputSpec::independent([0.2, 0.4, 0.6, 0.8, 0.5]);
        let est = estimate(
            &c,
            &spec,
            &Options {
                max_fanin: 2,
                ..Options::single_bn()
            },
        )
        .unwrap();
        let exact = exhaustive_switching(&c, &spec);
        for line in c.line_ids() {
            assert!(
                (est.switching(line) - exact[line.index()]).abs() < 1e-9,
                "line {} (through decomposition)",
                c.line_name(line)
            );
        }
    }

    #[test]
    fn stationarity_of_internal_lines() {
        // Stationary inputs make every internal line stationary too.
        let c = catalog::paper_example();
        let spec = InputSpec::from_models(vec![
            crate::InputModel::new(0.3, 0.1).unwrap(),
            crate::InputModel::new(0.7, 0.2).unwrap(),
            crate::InputModel::independent(0.5),
            crate::InputModel::new(0.4, 0.3).unwrap(),
        ]);
        let est = estimate(&c, &spec, &Options::single_bn()).unwrap();
        for line in c.line_ids() {
            assert!(
                est.distribution(line).is_stationary(1e-9),
                "line {} not stationary",
                c.line_name(line)
            );
        }
    }
}
