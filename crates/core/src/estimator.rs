//! The estimator facade: configuration ([`Options`]) and the compiled,
//! re-propagatable estimator ([`CompiledEstimator`]).
//!
//! The actual staged machinery — planning, per-segment modeling, backend
//! compilation, wave-scheduled propagation with boundary forwarding —
//! lives in [`crate::pipeline`]; this module only wraps it behind the
//! original public API.

use std::time::Duration;

use swact_bayesnet::{Heuristic, KernelMode, SparseMode};
use swact_circuit::{Circuit, LineId};

use crate::budget::{Budget, DegradationReport};
use crate::pipeline::{Backend, CompiledPipeline, SegmentTimings, StageTimings};
use crate::report::Estimate;
use crate::strategy::StructureStrategy;
use crate::{EstimateError, InputSpec};

/// Configuration of the estimator.
///
/// The defaults reproduce the paper's setup: min-fill triangulation,
/// fan-in decomposition to ≤ 4, and automatic segmentation with a
/// 2¹⁷-state budget per segment's junction tree — the operating point
/// where evidence propagation runs in milliseconds (Table 1's "Update"
/// column) while per-node errors stay in the 10⁻³ band.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Options {
    /// Triangulation heuristic for junction-tree compilation.
    pub heuristic: Heuristic,
    /// Structure-optimization policy: how elimination/variable orders and
    /// segment boundaries are found. The default
    /// [`StructureStrategy::GREEDY`] reproduces the pre-strategy pipeline
    /// bit-identically; FORCE orderings and balanced-cut segmentation
    /// search are opt-in. The strategy is hashed into the
    /// [`model_key`](crate::model_key), so artifacts and cache entries
    /// compiled under different strategies never mix.
    pub strategy: StructureStrategy,
    /// Gates wider than this are decomposed into two-input trees first.
    pub max_fanin: usize,
    /// Per-segment junction-tree state budget; lower values mean more,
    /// smaller Bayesian networks (faster, slightly less exact).
    pub segment_budget: usize,
    /// Gates between segmentation cost checks (the budget may overshoot by
    /// up to this many gates' growth).
    pub check_interval: usize,
    /// Force a single Bayesian network over the whole circuit. Errors with
    /// [`EstimateError::TooLarge`] if `segment_budget` would be exceeded.
    pub single_bn: bool,
    /// Forward pairwise joints across segment boundaries: a boundary line
    /// whose sibling root was produced in the same earlier segment (and
    /// shares a clique there) enters as `P(line | sibling)` instead of an
    /// independent marginal. Recovers most of the correlation segmentation
    /// would otherwise drop; disable to reproduce the paper's plain
    /// marginal forwarding (ablation E6). Only the junction-tree backend
    /// can export pairwise joints, so other backends always forward plain
    /// marginals regardless of this flag.
    pub boundary_correlation: bool,
    /// Zero-compression policy for compiled clique potentials. Logic
    /// circuits produce LIDAG CPTs that are mostly deterministic, so clique
    /// tables carry large numbers of structural zeros; compressed cliques
    /// iterate only their nonzero support during propagation. The default
    /// [`SparseMode::Auto`] decides per clique on the measured nonzero
    /// count: sparse iteration costs about three indexed loads per
    /// surviving entry vs one sequential load per dense entry, so a clique
    /// is compressed only when `3·nnz` beats its dense length (more than
    /// two thirds zeros). Results are bit-identical across modes.
    pub sparse: SparseMode,
    /// Inner-loop kernel flavor for junction-tree propagation. The default
    /// [`KernelMode::Scalar`] keeps every floating-point reduction in
    /// ascending source order, so estimates are bit-identical
    /// (`f64::to_bits`) to the reference two-pass factor algebra.
    /// [`KernelMode::Simd`] reassociates long sum reductions into four
    /// independent accumulator lanes — faster on wide cliques, identical
    /// to ~1e-15 relative but *not* bit-identical — and is therefore
    /// hashed into the [`model_key`](crate::model_key) and the persisted
    /// artifact options, so simd results never share a cache entry or
    /// artifact with scalar ones.
    pub kernel: KernelMode,
    /// Which inference engine evaluates each segment's Bayesian network.
    /// The default [`Backend::Jtree`] is the paper's exact junction-tree
    /// propagation; [`Backend::Bdd`] computes per-segment switching
    /// exactly on OBDDs; [`Backend::Sampling`] is the anytime
    /// forward-sampling estimator with per-segment confidence intervals;
    /// [`Backend::TwoState`] is the classic signal-probability ablation
    /// with the `2p(1−p)` switching proxy.
    pub backend: Backend,
    /// Base seed for the deterministic sampling backend. Each segment
    /// derives its own stream from this seed and the segment's content
    /// hash, so results are bit-identical across job counts and warm/cold
    /// artifact loads. Hashed into the model key: artifacts compiled
    /// under different seeds never mix.
    pub seed: u64,
    /// Absolute confidence-interval half-width target on a sampled
    /// segment's mean gate switching activity — the [`Backend::Sampling`]
    /// stopping criterion. The sampler draws batches until the
    /// Burch/Najm normal-approximation interval is at most this wide (or
    /// the remaining [`Budget::deadline`] is spent, or the internal batch
    /// cap is hit), and reports the achieved half-width in the estimate's
    /// [`AccuracyReport`](crate::AccuracyReport).
    pub ci_half_width: f64,
    /// z-score of the sampling confidence level (1.96 ≈ 95 %).
    pub ci_z: f64,
    /// Hard resource limits (state-space cap, resident factor bytes,
    /// per-stage deadline) checked at stage boundaries. Unlimited by
    /// default; see [`Budget`] for the degradation ladder exceeding them
    /// triggers.
    pub budget: Budget,
    /// Disable the degradation ladder: budget exhaustion errors with
    /// [`EstimateError::BudgetExceeded`] instead of replanning or falling
    /// back to the `twostate` backend for the offending segment.
    pub no_fallback: bool,
    /// Reuse work across successive `estimate` calls on one compiled
    /// estimator: collect messages whose source subtree saw no evidence
    /// change are served from a per-edge cache, and whole segments whose
    /// root statistics are unchanged are served from a memoized posterior.
    /// Results are bit-identical (`f64::to_bits`) to cold propagation by
    /// construction; disable only to measure the cold baseline.
    pub incremental: bool,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            heuristic: Heuristic::MinFill,
            strategy: StructureStrategy::GREEDY,
            max_fanin: 4,
            segment_budget: 1 << 17,
            check_interval: 4,
            single_bn: false,
            boundary_correlation: true,
            sparse: SparseMode::Auto,
            kernel: KernelMode::Scalar,
            backend: Backend::Jtree,
            seed: 0,
            ci_half_width: 0.01,
            ci_z: 1.96,
            budget: Budget::UNLIMITED,
            no_fallback: false,
            incremental: true,
        }
    }
}

impl Options {
    /// Options that force one exact Bayesian network over the whole
    /// circuit, with a 2²²-state memory guard (errors with
    /// [`EstimateError::TooLarge`] beyond it).
    pub fn single_bn() -> Options {
        Options {
            single_bn: true,
            segment_budget: 1 << 22,
            ..Options::default()
        }
    }

    /// Options with an explicit per-segment state budget.
    pub fn with_budget(segment_budget: usize) -> Options {
        Options {
            segment_budget,
            ..Options::default()
        }
    }

    /// Options with an explicit inference backend.
    pub fn with_backend(backend: Backend) -> Options {
        Options {
            backend,
            ..Options::default()
        }
    }

    /// Options with an explicit resource [`Budget`].
    pub fn with_resource_budget(budget: Budget) -> Options {
        Options {
            budget,
            ..Options::default()
        }
    }

    /// Options with an explicit [`StructureStrategy`].
    pub fn with_strategy(strategy: StructureStrategy) -> Options {
        Options {
            strategy,
            ..Options::default()
        }
    }
}

/// One-shot estimation: compile the circuit's (possibly segmented)
/// LIDAG-BNs and propagate the given input statistics.
///
/// For repeated estimation under different statistics, build a
/// [`CompiledEstimator`] once and call
/// [`estimate`](CompiledEstimator::estimate) per spec — propagation is
/// orders of magnitude cheaper than compilation (paper Table 1, "Update"
/// vs "Total" columns).
///
/// # Errors
///
/// Returns [`EstimateError::InputCountMismatch`] for a wrong-size spec,
/// [`EstimateError::TooLarge`] in forced single-BN mode, and wrapped
/// circuit/BN errors.
///
/// # Example
///
/// See the [crate docs](crate).
pub fn estimate(
    circuit: &Circuit,
    spec: &InputSpec,
    options: &Options,
) -> Result<Estimate, EstimateError> {
    let compiled = CompiledEstimator::compile_for(circuit, spec, options)?;
    compiled.estimate(spec)
}

/// A circuit whose segment Bayesian networks and junction trees have been
/// compiled once and can be re-propagated cheaply for any input statistics.
///
/// # Example
///
/// ```
/// use swact::{CompiledEstimator, InputSpec, Options};
/// use swact_circuit::catalog;
///
/// # fn main() -> Result<(), swact::EstimateError> {
/// let c17 = catalog::c17();
/// let compiled = CompiledEstimator::compile(&c17, &Options::default())?;
/// let uniform = compiled.estimate(&InputSpec::uniform(5))?;
/// let biased = compiled.estimate(&InputSpec::independent(vec![0.9; 5]))?;
/// assert_ne!(
///     uniform.switching(c17.outputs()[0]),
///     biased.switching(c17.outputs()[0]),
/// );
/// # Ok(())
/// # }
/// ```
pub struct CompiledEstimator {
    pipeline: CompiledPipeline,
}

impl std::fmt::Debug for CompiledEstimator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledEstimator")
            .field(
                "working_lines",
                &self.pipeline.working_circuit().num_lines(),
            )
            .field("segments", &self.pipeline.num_segments())
            .field("total_states", &self.pipeline.total_states())
            .field("compile_time", &self.pipeline.compile_time())
            .finish()
    }
}

impl CompiledEstimator {
    /// Wraps a pipeline reconstructed from a persisted artifact.
    pub(crate) fn from_pipeline(pipeline: CompiledPipeline) -> CompiledEstimator {
        CompiledEstimator { pipeline }
    }

    /// The underlying pipeline, for the artifact encoder.
    pub(crate) fn pipeline(&self) -> &CompiledPipeline {
        &self.pipeline
    }

    /// Compiles the circuit: fan-in decomposition, segmentation planning,
    /// per-segment LIDAG construction, and backend compilation (junction
    /// trees for the default [`Backend::Jtree`]).
    ///
    /// # Errors
    ///
    /// Returns [`EstimateError::TooLarge`] when `options.single_bn` is set
    /// and the whole-circuit tree exceeds the budget, or wrapped
    /// circuit/BN errors.
    pub fn compile(
        circuit: &Circuit,
        options: &Options,
    ) -> Result<CompiledEstimator, EstimateError> {
        Ok(CompiledEstimator {
            pipeline: CompiledPipeline::compile(circuit, None, options)?,
        })
    }

    /// Compiles the circuit *for a given input specification*: in addition
    /// to everything [`compile`](CompiledEstimator::compile) does, members
    /// of the spec's [`InputGroup`](crate::InputGroup)s are chained inside
    /// every segment so their spatial correlation is modeled exactly
    /// (pairwise). The group *membership* becomes part of the compiled
    /// structure; later [`estimate`](CompiledEstimator::estimate) calls may
    /// change all probabilities but must keep the same groups.
    ///
    /// # Errors
    ///
    /// Same as [`compile`](CompiledEstimator::compile), plus
    /// [`EstimateError::BackendUnsupported`] when the spec uses input
    /// groups or pairwise joints with a non-junction-tree backend.
    pub fn compile_for(
        circuit: &Circuit,
        spec: &InputSpec,
        options: &Options,
    ) -> Result<CompiledEstimator, EstimateError> {
        Ok(CompiledEstimator {
            pipeline: CompiledPipeline::compile(circuit, Some(spec), options)?,
        })
    }

    /// Propagates `spec` through the compiled trees and collects per-line
    /// transition distributions.
    ///
    /// Takes `&self`: the compiled trees are immutable and each
    /// propagation works on its own pooled propagation state, so sessions
    /// may run concurrently from multiple threads over one compiled
    /// estimator (the `swact-engine` crate builds on exactly this).
    ///
    /// # Errors
    ///
    /// Returns [`EstimateError::InputCountMismatch`] for a wrong-size spec.
    pub fn estimate(&self, spec: &InputSpec) -> Result<Estimate, EstimateError> {
        Ok(self.estimate_with_line_joints(spec, &[])?.0)
    }

    /// Like [`estimate`](CompiledEstimator::estimate), but additionally
    /// returns the estimated 4×4 joint transition distribution for each
    /// requested (original-circuit) line pair — `None` when the two lines
    /// never share a segment's Bayesian network (their joint is then
    /// simply the product of marginals under this model) or when the
    /// backend cannot compute pairwise joints (only [`Backend::Jtree`]
    /// can). Joints come from exact pairwise marginalization over the
    /// first segment containing both lines.
    ///
    /// The sequential estimator uses this to feed register-pair
    /// correlation back between fixed-point iterations.
    ///
    /// # Errors
    ///
    /// Same as [`estimate`](CompiledEstimator::estimate).
    #[allow(clippy::type_complexity)]
    pub fn estimate_with_line_joints(
        &self,
        spec: &InputSpec,
        line_pairs: &[(LineId, LineId)],
    ) -> Result<(Estimate, Vec<Option<[[f64; 4]; 4]>>), EstimateError> {
        self.pipeline.estimate_with_line_joints(spec, line_pairs)
    }

    /// The working (fan-in-decomposed) circuit the estimator runs over.
    pub fn working_circuit(&self) -> &Circuit {
        self.pipeline.working_circuit()
    }

    /// Number of segments (Bayesian networks) the circuit was split into.
    pub fn num_segments(&self) -> usize {
        self.pipeline.num_segments()
    }

    /// Compilation wall-clock time.
    pub fn compile_time(&self) -> Duration {
        self.pipeline.compile_time()
    }

    /// Total junction-tree state count across segments.
    pub fn total_states(&self) -> f64 {
        self.pipeline.total_states()
    }

    /// Largest clique state count across segments.
    pub fn max_clique_states(&self) -> f64 {
        self.pipeline.max_clique_states()
    }

    /// Total number of nonzero initial clique-potential entries across
    /// segments — the work the propagation hot path actually touches once
    /// zero-compressed cliques skip their structural zeros.
    pub fn nnz(&self) -> usize {
        self.pipeline.nnz()
    }

    /// Fraction of compiled clique-potential entries that are structural
    /// zeros (deterministic-CPT induced); `0.0` for an empty estimator.
    pub fn zero_fraction(&self) -> f64 {
        self.pipeline.zero_fraction()
    }

    /// Number of cliques stored in zero-compressed form.
    pub fn compressed_cliques(&self) -> usize {
        self.pipeline.compressed_cliques()
    }

    /// Cost-model estimate of one propagation sweep across all segments,
    /// in weighted table loads: dense cliques pay one sequential load per
    /// state, zero-compressed cliques pay `SPARSE_COST_PER_ENTRY` indexed
    /// loads per surviving entry. [`SparseMode`](crate::SparseMode)`::Auto`
    /// minimizes this per clique, so its total never exceeds
    /// `SparseMode::Off`'s — the invariant the c880 regression test pins.
    pub fn kernel_cost(&self) -> usize {
        self.pipeline.kernel_cost()
    }

    /// Number of segments whose compiled artifact came from a
    /// FORCE-searched order that beat the greedy one (always zero under
    /// [`OrderingStrategy::Greedy`](crate::OrderingStrategy::Greedy)).
    pub fn force_ordered_segments(&self) -> usize {
        self.pipeline.force_ordered_segments()
    }

    /// The options the estimator was compiled with.
    pub fn options(&self) -> &Options {
        self.pipeline.options()
    }

    /// The inference backend the estimator was compiled with.
    pub fn backend(&self) -> Backend {
        self.pipeline.backend()
    }

    /// Compile-side stage breakdown (`plan`/`model`/`compile`; the
    /// propagation-side stages are zero here and filled per
    /// [`Estimate`](crate::Estimate)).
    pub fn stage_timings(&self) -> StageTimings {
        self.pipeline.stage_timings()
    }

    /// Per-segment model/compile times.
    pub fn segment_timings(&self) -> &[SegmentTimings] {
        self.pipeline.segment_timings()
    }

    /// Number of boundary roots entering later segments with a forwarded
    /// pairwise joint (vs. an independent marginal).
    pub fn num_correlated_boundaries(&self) -> usize {
        self.pipeline.num_correlated_boundaries()
    }

    /// Number of dependency waves segments are scheduled into; segments
    /// within a wave propagate on separate threads.
    pub fn num_waves(&self) -> usize {
        self.pipeline.num_waves()
    }

    /// Total number of boundary-root connections across segments.
    pub fn num_boundary_roots(&self) -> usize {
        self.pipeline.num_boundary_roots()
    }

    /// Per-segment degradation records from the compile-time budget
    /// ladder; empty when every segment compiled within budget.
    pub fn degradations(&self) -> &[DegradationReport] {
        self.pipeline.degradations()
    }

    /// Number of segments evaluated by the anytime sampling backend,
    /// whether selected as the primary backend or reached via the
    /// degradation ladder.
    pub fn sampled_segments(&self) -> usize {
        self.pipeline.sampled_segments()
    }
}
