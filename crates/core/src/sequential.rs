//! Switching estimation for sequential circuits by fixed-point iteration.
//!
//! The DAC 2001 paper handles combinational logic; this module extends it
//! to registered designs the standard way the probabilistic-estimation
//! literature does: the combinational core is estimated frame-wise, each
//! register's *state-input* statistics are set to the transition
//! distribution estimated for its *next-state* line (a flip-flop output's
//! transition distribution *is* its data line's, one frame later), and
//! the process iterates to a fixed point from all-quiet initial state
//! statistics.
//!
//! # Accuracy envelope
//!
//! * **Feed-forward state** (shift registers, pipelined datapaths — no
//!   combinational path from a register output back to its own data
//!   input): per-register marginals are **exact** (delayed copies of
//!   driving-logic statistics). Joints *between* registers are forwarded
//!   pairwise along a consecutive-register chain, so logic recombining
//!   several stages sees their correlation to first order; residual errors
//!   of a few percent can remain where correlation flows through a shared
//!   clock slice (`qₜ = dₜ₋₁`) rather than through a same-frame joint.
//! * **Feedback state** (hold/load-enable registers, counters, LFSRs):
//!   **conservative upper bounds**. The frame-wise model cannot represent
//!   the constraint `qₜ = dₜ₋₁` *inside* a frame, so the self-correlation
//!   that suppresses toggles under hold (or parity) is lost and activity
//!   saturates high. Exact treatment needs a Markov chain over the joint
//!   state space (Tsui et al., DAC'94) and is outside this crate's scope.
//!   For power estimation an upper bound errs on the safe side; interpret
//!   feedback-register numbers accordingly.

use swact_circuit::sequential::SequentialCircuit;

use crate::{
    CompiledEstimator, Estimate, EstimateError, InputModel, InputSpec, Options, PairwiseJoint,
    TransitionDist,
};

/// Options for [`estimate_sequential`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SequentialOptions {
    /// Estimator options for the combinational core.
    pub options: Options,
    /// Maximum fixed-point iterations.
    pub max_iterations: usize,
    /// Convergence threshold on the largest change of any state line's
    /// transition probabilities between iterations.
    pub tolerance: f64,
}

impl Default for SequentialOptions {
    fn default() -> SequentialOptions {
        SequentialOptions {
            options: Options::default(),
            max_iterations: 50,
            tolerance: 1e-6,
        }
    }
}

/// Result of a sequential estimation.
#[derive(Debug, Clone)]
pub struct SequentialEstimate {
    /// Frame-wise estimate over the combinational core at the fixed point.
    pub estimate: Estimate,
    /// Converged per-register state distributions.
    pub state_distributions: Vec<TransitionDist>,
    /// Iterations executed.
    pub iterations: usize,
    /// Whether the tolerance was met (vs. hitting `max_iterations`).
    pub converged: bool,
}

/// Estimates switching activity of a sequential circuit: compiles the
/// combinational core once, then iterates the state-line statistics to a
/// fixed point (Picard iteration).
///
/// `primary_spec` covers only the true primary inputs
/// ([`SequentialCircuit::num_primary_inputs`]); state inputs are managed
/// internally, starting from the uniform transition distribution. Input
/// groups over primaries are honored.
///
/// # Errors
///
/// Returns [`EstimateError::InputCountMismatch`] when `primary_spec` does
/// not match the primary-input count, plus the usual compile errors.
///
/// # Example
///
/// A two-stage shift register: each stage's activity equals the input's.
///
/// ```
/// use swact::sequential::{estimate_sequential, SequentialOptions};
/// use swact::{InputModel, InputSpec};
/// use swact_circuit::sequential::parse_bench_sequential;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let seq = parse_bench_sequential(
///     "shift2",
///     "INPUT(a)\nOUTPUT(q1)\nq0 = DFF(d0)\nq1 = DFF(d1)\nd0 = BUF(a)\nd1 = BUF(q0)\n",
/// )?;
/// let spec = InputSpec::from_models(vec![InputModel::new(0.3, 0.2)?]);
/// let result = estimate_sequential(&seq, &spec, &SequentialOptions::default())?;
/// assert!(result.converged);
/// let q1 = seq.state_line(1);
/// assert!((result.estimate.switching(q1) - 0.2).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub fn estimate_sequential(
    seq: &SequentialCircuit,
    primary_spec: &InputSpec,
    seq_options: &SequentialOptions,
) -> Result<SequentialEstimate, EstimateError> {
    if primary_spec.len() != seq.num_primary_inputs() {
        return Err(EstimateError::InputCountMismatch {
            circuit: seq.num_primary_inputs(),
            spec: primary_spec.len(),
        });
    }
    let core = seq.core();
    let num_primary = seq.num_primary_inputs();
    // Initial state statistics: unbiased but quiet, so designs whose
    // activity is driven entirely by the primary inputs converge to the
    // correct all-quiet fixed point when those inputs are idle.
    let mut state_models: Vec<InputModel> =
        vec![InputModel::new(0.5, 0.0).expect("quiet start is feasible"); seq.registers().len()];
    // Consecutive registers are chained so their *joint* state statistics
    // survive the frame boundary (cross-register correlation, e.g. between
    // pipeline stages, otherwise evaporates). The joints are re-estimated
    // each iteration from the corresponding next-state line pairs.
    let chain: Vec<(usize, usize)> = (1..seq.registers().len())
        .filter(|&i| seq.registers()[i - 1].next_state != seq.registers()[i].next_state)
        .map(|i| (i - 1, i))
        .collect();
    let d_pairs: Vec<(swact_circuit::LineId, swact_circuit::LineId)> = chain
        .iter()
        .map(|&(a, b)| (seq.registers()[a].next_state, seq.registers()[b].next_state))
        .collect();
    let independent_joint = |ma: &InputModel, mb: &InputModel| -> [[f64; 4]; 4] {
        let da = ma.to_distribution().as_array();
        let db = mb.to_distribution().as_array();
        let mut joint = [[0.0f64; 4]; 4];
        for (x, row) in joint.iter_mut().enumerate() {
            for (y, slot) in row.iter_mut().enumerate() {
                *slot = da[x] * db[y];
            }
        }
        joint
    };
    let mut state_joints: Vec<[[f64; 4]; 4]> = chain
        .iter()
        .map(|&(a, b)| independent_joint(&state_models[a], &state_models[b]))
        .collect();
    let build_spec = |state_models: &[InputModel], state_joints: &[[[f64; 4]; 4]]| -> InputSpec {
        let mut models = primary_spec.models().to_vec();
        models.extend_from_slice(state_models);
        let pair_joints = chain
            .iter()
            .zip(state_joints)
            .map(|(&(a, b), &joint)| PairwiseJoint {
                a: num_primary + a,
                b: num_primary + b,
                joint,
            })
            .collect();
        InputSpec::from_models(models)
            .with_groups(primary_spec.groups().to_vec())
            .with_pairwise_joints(pair_joints)
    };
    let compiled = CompiledEstimator::compile_for(
        core,
        &build_spec(&state_models, &state_joints),
        &seq_options.options,
    )?;

    let (mut estimate, mut d_joints) =
        compiled.estimate_with_line_joints(&build_spec(&state_models, &state_joints), &d_pairs)?;
    let mut iterations = 1;
    let mut converged = false;
    while iterations < seq_options.max_iterations {
        // Next state statistics: each register's state input adopts its
        // data line's estimated transition distribution, projected onto
        // the stationary (p1, activity) parameterization; chained pairs
        // adopt their data lines' estimated joint.
        let mut delta = 0.0f64;
        let mut next_models = Vec::with_capacity(state_models.len());
        for (r, reg) in seq.registers().iter().enumerate() {
            let d = estimate.distribution(reg.next_state);
            let old = state_models[r].to_distribution();
            for (a, b) in d.as_array().iter().zip(old.as_array()) {
                delta = delta.max((a - b).abs());
            }
            next_models.push(project_stationary(&d));
        }
        state_models = next_models;
        state_joints = chain
            .iter()
            .enumerate()
            .map(|(k, &(a, b))| match d_joints[k] {
                Some(joint) => joint,
                None => independent_joint(&state_models[a], &state_models[b]),
            })
            .collect();
        let spec = build_spec(&state_models, &state_joints);
        let result = compiled.estimate_with_line_joints(&spec, &d_pairs)?;
        estimate = result.0;
        d_joints = result.1;
        iterations += 1;
        if delta <= seq_options.tolerance {
            converged = true;
            break;
        }
    }
    Ok(SequentialEstimate {
        estimate,
        state_distributions: state_models
            .iter()
            .map(InputModel::to_distribution)
            .collect(),
        iterations,
        converged,
    })
}

/// Projects an arbitrary transition distribution onto the stationary
/// `(p1, activity)` input parameterization: `p1` is the average of the two
/// clock slices' one-probabilities and the activity is preserved (clamped
/// to the feasible range).
fn project_stationary(d: &TransitionDist) -> InputModel {
    let p1 = 0.5 * (d.p_one_prev() + d.p_one_next());
    let activity = d.switching().min(2.0 * p1.min(1.0 - p1));
    InputModel::new(p1.clamp(0.0, 1.0), activity.max(0.0))
        .expect("projection is feasible by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use swact_circuit::sequential::parse_bench_sequential;

    /// A pipelined datapath: two stages of logic with registers between.
    const PIPELINE: &str = "
        INPUT(a)
        INPUT(b)
        INPUT(c)
        OUTPUT(y)
        q0 = DFF(s0)
        q1 = DFF(s1)
        s0 = AND(a, b)
        s1 = OR(q0, c)
        y = NAND(q1, q0)
    ";

    /// A load-enable register: holds unless `load` is high.
    const GATED: &str = "
        INPUT(load)
        INPUT(data)
        OUTPUT(q)
        q = DFF(d)
        nload = NOT(load)
        hold = AND(nload, q)
        take = AND(load, data)
        d = OR(hold, take)
    ";

    #[test]
    fn pipeline_is_exact_against_simulation() {
        // Feed-forward state: the fixed point is exact; deviation from
        // simulation is only sampling noise.
        let seq = parse_bench_sequential("pipe", PIPELINE).unwrap();
        let spec = InputSpec::independent([0.5, 0.3, 0.8]);
        let result = estimate_sequential(&seq, &spec, &SequentialOptions::default()).unwrap();
        assert!(result.converged);
        let model = swact_sim::StreamModel::independent([0.5, 0.3, 0.8]);
        let sim = swact_sim::measure_activity_sequential(&seq, &model, 1 << 18, 1 << 9, 11);
        for line in seq.core().line_ids() {
            assert!(
                (result.estimate.switching(line) - sim.switching[line.index()]).abs() < 0.01,
                "line {}: est {} vs sim {}",
                seq.core().line_name(line),
                result.estimate.switching(line),
                sim.switching[line.index()]
            );
        }
        // q0's statistics are exactly those of s0 = AND(a, b).
        let q0 = seq.state_line(0);
        let s0 = seq.registers()[0].next_state;
        assert!((result.estimate.switching(q0) - result.estimate.switching(s0)).abs() < 1e-9);
    }

    #[test]
    fn gated_register_is_a_conservative_upper_bound() {
        // Feedback state: the estimate must bound the true activity from
        // above (safe for power), and track the trend with the load rate.
        let seq = parse_bench_sequential("gated", GATED).unwrap();
        let mut previous_estimate = 1.1f64;
        for p_load in [0.9, 0.5, 0.2] {
            let spec = InputSpec::independent([p_load, 0.5]);
            let result = estimate_sequential(&seq, &spec, &SequentialOptions::default()).unwrap();
            assert!(result.converged, "load={p_load}");
            let model = swact_sim::StreamModel::independent([p_load, 0.5]);
            let sim = swact_sim::measure_activity_sequential(&seq, &model, 1 << 18, 1 << 9, 17);
            let q = seq.state_line(0);
            let est = result.estimate.switching(q);
            let truth = sim.switching[q.index()];
            assert!(
                est >= truth - 0.01,
                "load={p_load}: estimate {est} below simulation {truth}"
            );
            assert!(
                est <= previous_estimate + 1e-9,
                "estimate should not grow as load drops"
            );
            previous_estimate = est;
        }
    }

    #[test]
    fn frozen_inputs_converge_to_zero_activity() {
        // With load stuck low the register holds forever; the quiet start
        // finds the all-quiet fixed point.
        let seq = parse_bench_sequential("gated", GATED).unwrap();
        let spec = InputSpec::from_models(vec![
            InputModel::new(0.0, 0.0).unwrap(),
            InputModel::new(0.5, 0.0).unwrap(),
        ]);
        let result = estimate_sequential(&seq, &spec, &SequentialOptions::default()).unwrap();
        assert!(result.converged);
        for line in seq.core().gate_lines() {
            assert!(
                result.estimate.switching(line) < 1e-9,
                "line {} moved",
                seq.core().line_name(line)
            );
        }
    }

    #[test]
    fn parity_feedback_is_flagged_limitation() {
        // A T flip-flop saturates to activity ~½ regardless of the enable
        // rate — the documented envelope boundary. The test pins the
        // behavior so any future improvement shows up as a diff.
        let seq = parse_bench_sequential(
            "toggle",
            "INPUT(en)\nOUTPUT(q)\nq = DFF(d)\nd = XOR(q, en)\n",
        )
        .unwrap();
        let spec = InputSpec::independent([0.2]);
        let result = estimate_sequential(&seq, &spec, &SequentialOptions::default()).unwrap();
        let q = seq.state_line(0);
        assert!(
            result.estimate.switching(q) > 0.4,
            "saturation expected, got {}",
            result.estimate.switching(q)
        );
    }

    #[test]
    fn register_pair_joints_are_forwarded() {
        // d0 = AND(a,b) and d1 = NAND(a,b) are perfectly anti-correlated
        // within one frame; the forwarded joint must make the next frame
        // see AND(q0, q1) as (almost) impossible, where independent state
        // marginals would predict p(q0)·p(q1) ≈ 0.19.
        let seq = parse_bench_sequential(
            "anticorr",
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\n\
             q0 = DFF(d0)\nq1 = DFF(d1)\n\
             d0 = AND(a, b)\nd1 = NAND(a, b)\ny = AND(q0, q1)\n",
        )
        .unwrap();
        let spec = InputSpec::uniform(2);
        let result = estimate_sequential(&seq, &spec, &SequentialOptions::default()).unwrap();
        assert!(result.converged);
        let y = seq.core().find_line("y").unwrap();
        assert!(
            result.estimate.signal_probability(y) < 1e-6,
            "anti-correlated registers must never both be 1, got P(y) = {}",
            result.estimate.signal_probability(y)
        );
        assert!(result.estimate.switching(y) < 1e-6);
        // Cross-check against sequential simulation.
        let sim = swact_sim::measure_activity_sequential(
            &seq,
            &swact_sim::StreamModel::uniform(2),
            1 << 16,
            1 << 8,
            23,
        );
        assert!(sim.switching[y.index()] < 1e-6);
    }

    #[test]
    fn spec_size_checked() {
        let seq = parse_bench_sequential("gated", GATED).unwrap();
        assert!(matches!(
            estimate_sequential(&seq, &InputSpec::uniform(3), &SequentialOptions::default()),
            Err(EstimateError::InputCountMismatch { .. })
        ));
    }

    #[test]
    fn iteration_cap_respected() {
        let seq = parse_bench_sequential("gated", GATED).unwrap();
        let result = estimate_sequential(
            &seq,
            &InputSpec::uniform(2),
            &SequentialOptions {
                max_iterations: 2,
                tolerance: -1.0, // unreachable: never converges
                ..SequentialOptions::default()
            },
        )
        .unwrap();
        assert_eq!(result.iterations, 2);
        assert!(!result.converged);
    }
}
