//! Two-state ablation model: signal probability only.
//!
//! Before the paper's four-state formulation, probabilistic estimators
//! modeled each line as a *two-state* variable (its value at a single
//! clock) and recovered switching as `2·p·(1−p)` under a
//! temporal-independence assumption. This module implements exactly that
//! on the same Bayesian-network machinery, so the value of the four-state
//! (spatio-*temporal*) formulation can be isolated — ablation A2 in
//! DESIGN.md. Spatial correlation is still exact here; only temporal
//! correlation is sacrificed.

use swact_bayesnet::{BayesNet, Cpt, JunctionTree, Propagator, VarId};
use swact_circuit::{decompose::decompose_fanin, Circuit, GateKind, LineId};

use crate::segment::RootSource;
use crate::{EstimateError, InputSpec, Options, SegmentationPlan};

/// The deterministic two-state CPT of a gate (plain truth table).
pub fn gate_cpt_two_state(kind: GateKind, fanin: usize) -> Cpt {
    let rows = 1usize << fanin;
    Cpt::deterministic(rows, 2, |row| {
        let bits = (0..fanin).map(|i| row >> (fanin - 1 - i) & 1 == 1);
        kind.eval(bits) as usize
    })
}

/// Two-state analogue of [`gate_family`](crate::gate_family): distinct
/// input lines plus the CPT with repeated connections evaluated
/// consistently.
pub fn gate_family_two_state(kind: GateKind, inputs: &[LineId]) -> (Vec<LineId>, Cpt) {
    let mut unique: Vec<LineId> = Vec::new();
    let slot_of: Vec<usize> = inputs
        .iter()
        .map(|&line| match unique.iter().position(|&u| u == line) {
            Some(pos) => pos,
            None => {
                unique.push(line);
                unique.len() - 1
            }
        })
        .collect();
    if unique.len() == inputs.len() {
        return (unique, gate_cpt_two_state(kind, inputs.len()));
    }
    let k = unique.len();
    let cpt = Cpt::deterministic(1 << k, 2, |row| {
        let bits = slot_of.iter().map(|&s| row >> (k - 1 - s) & 1 == 1);
        kind.eval(bits) as usize
    });
    (unique, cpt)
}

/// Result of a two-state estimation.
#[derive(Debug, Clone)]
pub struct TwoStateEstimate {
    /// Per original line: exact signal probability `P(line = 1)`.
    pub signal_probability: Vec<f64>,
    /// Per original line: switching proxy `2·p·(1−p)` (temporal
    /// independence assumed).
    pub switching: Vec<f64>,
    /// Number of Bayesian networks used.
    pub segments: usize,
}

/// Estimates signal probabilities with two-state variables (exact spatial
/// correlation, no temporal modeling) and derives the classic
/// `2·p·(1−p)` switching proxy.
///
/// # Errors
///
/// Mirrors [`estimate`](crate::estimate): spec-size mismatches and wrapped
/// circuit/BN errors.
///
/// # Example
///
/// ```
/// use swact::twostate::estimate_two_state;
/// use swact::{InputSpec, Options};
/// use swact_circuit::catalog;
///
/// # fn main() -> Result<(), swact::EstimateError> {
/// let c17 = catalog::c17();
/// let est = estimate_two_state(&c17, &InputSpec::uniform(5), &Options::default())?;
/// // Uniform inputs: every PI has p = 0.5, switching proxy 0.5.
/// let pi = c17.inputs()[0];
/// assert!((est.switching[pi.index()] - 0.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn estimate_two_state(
    circuit: &Circuit,
    spec: &InputSpec,
    options: &Options,
) -> Result<TwoStateEstimate, EstimateError> {
    if spec.len() != circuit.num_inputs() {
        return Err(EstimateError::InputCountMismatch {
            circuit: circuit.num_inputs(),
            spec: spec.len(),
        });
    }
    let working = decompose_fanin(circuit, options.max_fanin.max(2))?;
    let plan = SegmentationPlan::plan(
        &working,
        2,
        options.segment_budget,
        options.check_interval,
        options.heuristic,
    );
    let mut p_one = vec![0.0f64; working.num_lines()];
    for (i, &pi) in working.inputs().iter().enumerate() {
        p_one[pi.index()] = spec.model(i).p1();
    }
    for seg in plan.segments() {
        let mut net = BayesNet::new();
        let mut var_of: std::collections::HashMap<LineId, VarId> = std::collections::HashMap::new();
        for &(line, source) in &seg.roots {
            let p = match source {
                RootSource::PrimaryInput(pos) => spec.model(pos).p1(),
                RootSource::Boundary => p_one[line.index()],
            };
            let var = net.add_var(
                working.line_name(line),
                2,
                &[],
                Cpt::prior(vec![1.0 - p, p]),
            )?;
            var_of.insert(line, var);
        }
        let mut gate_vars = Vec::new();
        for &line in &seg.gates {
            let gate = working.gate(line).expect("planned lines are gates");
            let (unique_inputs, cpt) = gate_family_two_state(gate.kind, &gate.inputs);
            let parents: Vec<VarId> = unique_inputs.iter().map(|l| var_of[l]).collect();
            let var = net.add_var(working.line_name(line), 2, &parents, cpt)?;
            var_of.insert(line, var);
            gate_vars.push((line, var));
        }
        let tree = JunctionTree::compile_with(&net, options.heuristic)?;
        let mut prop = Propagator::new(&tree, &net)?;
        prop.calibrate();
        for (line, var) in gate_vars {
            p_one[line.index()] = prop.marginal(var)[1];
        }
    }
    // Map back to original lines by name.
    let signal_probability: Vec<f64> = circuit
        .line_ids()
        .map(|l| {
            let w = working
                .find_line(circuit.line_name(l))
                .expect("names preserved");
            p_one[w.index()]
        })
        .collect();
    let switching = signal_probability
        .iter()
        .map(|&p| 2.0 * p * (1.0 - p))
        .collect();
    Ok(TwoStateEstimate {
        signal_probability,
        switching,
        segments: plan.segments().len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{estimate, InputModel};
    use swact_circuit::catalog;

    #[test]
    fn two_state_cpt_truth_table() {
        let cpt = gate_cpt_two_state(GateKind::Nand, 2);
        assert_eq!(cpt.as_rows()[0], vec![0.0, 1.0]); // 00 → 1
        assert_eq!(cpt.as_rows()[3], vec![1.0, 0.0]); // 11 → 0
    }

    #[test]
    fn signal_probabilities_match_four_state_model() {
        // Both models compute the same exact signal probabilities.
        let c17 = catalog::c17();
        let spec = InputSpec::independent([0.3, 0.6, 0.5, 0.8, 0.2]);
        let two = estimate_two_state(&c17, &spec, &Options::default()).unwrap();
        let four = estimate(&c17, &spec, &Options::single_bn()).unwrap();
        for line in c17.line_ids() {
            assert!(
                (two.signal_probability[line.index()] - four.signal_probability(line)).abs() < 1e-9,
                "line {}",
                c17.line_name(line)
            );
        }
    }

    #[test]
    fn switching_proxy_matches_four_state_under_independence() {
        // With temporally independent inputs, switching == 2p(1−p) holds
        // exactly for the *inputs*, and for internal lines of c17 too
        // (the two clock slices are independent).
        let c17 = catalog::c17();
        let spec = InputSpec::uniform(5);
        let two = estimate_two_state(&c17, &spec, &Options::default()).unwrap();
        let four = estimate(&c17, &spec, &Options::single_bn()).unwrap();
        for line in c17.line_ids() {
            assert!(
                (two.switching[line.index()] - four.switching(line)).abs() < 1e-9,
                "line {}",
                c17.line_name(line)
            );
        }
    }

    #[test]
    fn two_state_misses_temporal_correlation() {
        // With *correlated* inputs the proxy must deviate from the exact
        // four-state estimate — the ablation's point.
        let c17 = catalog::c17();
        let spec = InputSpec::from_models(vec![InputModel::new(0.5, 0.1).unwrap(); 5]);
        let two = estimate_two_state(&c17, &spec, &Options::default()).unwrap();
        let four = estimate(&c17, &spec, &Options::single_bn()).unwrap();
        let out = c17.outputs()[0];
        let diff = (two.switching[out.index()] - four.switching(out)).abs();
        assert!(diff > 0.05, "expected visible temporal error, got {diff}");
    }

    #[test]
    fn spec_size_checked() {
        let c17 = catalog::c17();
        assert!(estimate_two_state(&c17, &InputSpec::uniform(2), &Options::default()).is_err());
    }
}
