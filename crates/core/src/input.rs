use crate::{EstimateError, Transition, TransitionDist};

/// Stochastic model of one primary input: stationary signal probability
/// `P(1)` plus switching activity `P(xₜ ≠ xₜ₋₁)` (a stationary lag-1
/// Markov chain, exactly as in `swact-sim`).
///
/// # Example
///
/// ```
/// use swact::InputModel;
///
/// let uniform = InputModel::independent(0.5);
/// assert!((uniform.to_distribution().switching() - 0.5).abs() < 1e-12);
///
/// let bursty = InputModel::new(0.5, 0.1).unwrap();
/// assert!((bursty.to_distribution().switching() - 0.1).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InputModel {
    p1: f64,
    activity: f64,
}

impl InputModel {
    /// A model with explicit signal probability and switching activity.
    ///
    /// # Errors
    ///
    /// Returns [`EstimateError::InvalidInputModel`] when parameters are out
    /// of range or jointly infeasible (a stationary chain at `p1` can
    /// switch at most `2·min(p1, 1−p1)` of the time).
    pub fn new(p1: f64, activity: f64) -> Result<InputModel, EstimateError> {
        if !(0.0..=1.0).contains(&p1) || !(0.0..=1.0).contains(&activity) {
            return Err(EstimateError::InvalidInputModel { p1, activity });
        }
        let max_activity = 2.0 * p1.min(1.0 - p1);
        if activity > max_activity + 1e-12 {
            return Err(EstimateError::InvalidInputModel { p1, activity });
        }
        Ok(InputModel { p1, activity })
    }

    /// A temporally independent input: `activity = 2·p1·(1−p1)`.
    ///
    /// # Panics
    ///
    /// Panics if `p1 ∉ [0, 1]`.
    pub fn independent(p1: f64) -> InputModel {
        InputModel::new(p1, 2.0 * p1 * (1.0 - p1)).expect("independent model is always feasible")
    }

    /// The stationary signal probability `P(1)`.
    pub fn p1(&self) -> f64 {
        self.p1
    }

    /// The switching activity `P(xₜ ≠ xₜ₋₁)`.
    pub fn activity(&self) -> f64 {
        self.activity
    }

    /// The model as a distribution over the four [`Transition`] states
    /// (stationarity makes `P(x01) = P(x10) = activity/2`).
    pub fn to_distribution(&self) -> TransitionDist {
        let half = self.activity / 2.0;
        TransitionDist::new([
            (1.0 - self.p1 - half).max(0.0),
            half,
            half,
            (self.p1 - half).max(0.0),
        ])
    }
}

/// A spatially correlated input group: members copy a shared latent stream
/// with probability `copy_prob` per clock, otherwise follow their own
/// [`InputModel`] — the same generative model as `swact-sim`'s
/// `SpatialGroup`, so estimates validate directly against simulation.
///
/// This realizes the paper's stated future work: "input modeling for
/// capturing spatial correlation at the primary inputs using the same BN
/// model" (§7).
#[derive(Debug, Clone, PartialEq)]
pub struct InputGroup {
    /// Input positions (indices into the circuit's input list).
    pub members: Vec<usize>,
    /// The latent stream's model.
    pub latent: InputModel,
    /// Per-clock probability that a member copies the latent value.
    pub copy_prob: f64,
}

impl InputGroup {
    /// The *effective* transition distribution of a member: a
    /// `copy_prob`-mixture of the latent stream and the member's own
    /// process, enumerated in closed form.
    pub fn member_marginal(&self, own: InputModel) -> TransitionDist {
        let latent = self.latent.to_distribution().as_array();
        let own_dist = own.to_distribution().as_array();
        let c = self.copy_prob;
        let mut joint = [0.0f64; 4];
        for (l_state, &wl) in latent.iter().enumerate() {
            for (o_state, &wo) in own_dist.iter().enumerate() {
                for mask in 0..4usize {
                    let copy_prev = mask & 1 == 1;
                    let copy_next = mask & 2 == 2;
                    let wm = (if copy_prev { c } else { 1.0 - c })
                        * (if copy_next { c } else { 1.0 - c });
                    let l = Transition::from_index(l_state);
                    let o = Transition::from_index(o_state);
                    let prev = if copy_prev { l.prev() } else { o.prev() };
                    let next = if copy_next { l.next() } else { o.next() };
                    joint[Transition::from_values(prev, next).index()] += wl * wo * wm;
                }
            }
        }
        TransitionDist::new(joint)
    }

    /// The exact joint transition distribution of two members (their own
    /// models given), as `joint[a][b] = P(A = a, B = b)`. Enumerated over
    /// the latent pair, both own pairs, and all copy masks.
    pub fn member_pair_joint(&self, own_a: InputModel, own_b: InputModel) -> [[f64; 4]; 4] {
        let latent = self.latent.to_distribution().as_array();
        let da = own_a.to_distribution().as_array();
        let db = own_b.to_distribution().as_array();
        let c = self.copy_prob;
        let mut joint = [[0.0f64; 4]; 4];
        for (l_state, &wl) in latent.iter().enumerate() {
            let l = Transition::from_index(l_state);
            for (a_state, &wa) in da.iter().enumerate() {
                let a_own = Transition::from_index(a_state);
                for (b_state, &wb) in db.iter().enumerate() {
                    let b_own = Transition::from_index(b_state);
                    for mask in 0..16usize {
                        let (ca_p, ca_n) = (mask & 1 == 1, mask & 2 == 2);
                        let (cb_p, cb_n) = (mask & 4 == 4, mask & 8 == 8);
                        let weight = wl
                            * wa
                            * wb
                            * (if ca_p { c } else { 1.0 - c })
                            * (if ca_n { c } else { 1.0 - c })
                            * (if cb_p { c } else { 1.0 - c })
                            * (if cb_n { c } else { 1.0 - c });
                        if weight == 0.0 {
                            continue;
                        }
                        let a = Transition::from_values(
                            if ca_p { l.prev() } else { a_own.prev() },
                            if ca_n { l.next() } else { a_own.next() },
                        );
                        let b = Transition::from_values(
                            if cb_p { l.prev() } else { b_own.prev() },
                            if cb_n { l.next() } else { b_own.next() },
                        );
                        joint[a.index()][b.index()] += weight;
                    }
                }
            }
        }
        joint
    }
}

/// An explicit pairwise joint between two inputs' transition states:
/// `joint[a_state][b_state] = P(A = a_state, B = b_state)`.
///
/// This is the most general pairwise correlation interface: input `b` is
/// conditioned on input `a` (with `a` keeping its own marginal prior), so
/// the `a`-marginal of `joint` should match `a`'s [`InputModel`]. The
/// [`InputGroup`] latent-copy model is the common parametric special case;
/// explicit joints are what the sequential estimator feeds back between
/// iterations.
#[derive(Debug, Clone, PartialEq)]
pub struct PairwiseJoint {
    /// The conditioning input's position.
    pub a: usize,
    /// The conditioned input's position (each input may be conditioned at
    /// most once, and not also be in a group).
    pub b: usize,
    /// `P(A, B)` over the 4×4 transition states.
    pub joint: [[f64; 4]; 4],
}

impl PairwiseJoint {
    /// The `B` marginal implied by the joint.
    pub fn b_marginal(&self) -> TransitionDist {
        let mut m = [0.0f64; 4];
        for row in &self.joint {
            for (s, &p) in row.iter().enumerate() {
                m[s] += p;
            }
        }
        TransitionDist::new(m)
    }

    /// The `A` marginal implied by the joint.
    pub fn a_marginal(&self) -> TransitionDist {
        let m = [
            self.joint[0].iter().sum(),
            self.joint[1].iter().sum(),
            self.joint[2].iter().sum(),
            self.joint[3].iter().sum(),
        ];
        TransitionDist::new(m)
    }

    /// The conditional `P(B = b | A = a)` as rows over `a`, with uniform
    /// rows where `P(A = a)` is zero.
    pub fn conditional_rows(&self) -> [[f64; 4]; 4] {
        let mut rows = [[0.25f64; 4]; 4];
        for (a, row) in self.joint.iter().enumerate() {
            let mass: f64 = row.iter().sum();
            if mass > 0.0 {
                for (b, &p) in row.iter().enumerate() {
                    rows[a][b] = p / mass;
                }
            }
        }
        rows
    }
}

/// Input statistics for a whole circuit: one [`InputModel`] per primary
/// input (in the circuit's input declaration order), plus optional
/// spatially correlated [`InputGroup`]s and explicit [`PairwiseJoint`]s.
///
/// # Example
///
/// ```
/// use swact::InputSpec;
///
/// let spec = InputSpec::uniform(5);
/// assert_eq!(spec.len(), 5);
/// let biased = InputSpec::independent([0.9, 0.1, 0.5]);
/// assert!((biased.model(0).p1() - 0.9).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct InputSpec {
    models: Vec<InputModel>,
    groups: Vec<InputGroup>,
    pair_joints: Vec<PairwiseJoint>,
}

impl InputSpec {
    /// All inputs i.i.d. uniform — the paper's "random input streams".
    pub fn uniform(num_inputs: usize) -> InputSpec {
        InputSpec {
            models: vec![InputModel::independent(0.5); num_inputs],
            groups: Vec::new(),
            pair_joints: Vec::new(),
        }
    }

    /// Temporally independent inputs with per-input signal probabilities.
    ///
    /// # Panics
    ///
    /// Panics if any probability is out of `[0, 1]`.
    pub fn independent(p1: impl IntoIterator<Item = f64>) -> InputSpec {
        InputSpec {
            models: p1.into_iter().map(InputModel::independent).collect(),
            groups: Vec::new(),
            pair_joints: Vec::new(),
        }
    }

    /// From explicit per-input models.
    pub fn from_models(models: Vec<InputModel>) -> InputSpec {
        InputSpec {
            models,
            groups: Vec::new(),
            pair_joints: Vec::new(),
        }
    }

    /// Adds spatially correlated input groups (builder style).
    ///
    /// # Panics
    ///
    /// Panics if a member index is out of range, repeated, appears in more
    /// than one group, or a `copy_prob` is outside `[0, 1]`.
    pub fn with_groups(mut self, groups: Vec<InputGroup>) -> InputSpec {
        let mut seen = std::collections::HashSet::new();
        for group in &groups {
            assert!(
                (0.0..=1.0).contains(&group.copy_prob),
                "copy_prob out of range"
            );
            for &member in &group.members {
                assert!(member < self.models.len(), "group member out of range");
                assert!(seen.insert(member), "input {member} in multiple groups");
            }
        }
        self.groups = groups;
        self
    }

    /// Adds explicit pairwise joints (builder style). Each `b` input may
    /// be conditioned at most once and must not belong to a group; the
    /// structure must be a forest (no `b` may also condition its own
    /// ancestor).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range, a `b` repeats or is grouped,
    /// `a == b`, a joint is not a distribution, or the `a → b` edges form
    /// a cycle.
    pub fn with_pairwise_joints(mut self, pair_joints: Vec<PairwiseJoint>) -> InputSpec {
        let mut conditioned = std::collections::HashSet::new();
        for pair in &pair_joints {
            assert!(pair.a < self.models.len(), "pair input a out of range");
            assert!(pair.b < self.models.len(), "pair input b out of range");
            assert_ne!(pair.a, pair.b, "pair must involve two distinct inputs");
            assert!(
                conditioned.insert(pair.b),
                "input {} conditioned twice",
                pair.b
            );
            assert!(
                self.group_of(pair.b).is_none(),
                "input {} is already in a group",
                pair.b
            );
            let total: f64 = pair.joint.iter().flatten().sum();
            assert!(
                (total - 1.0).abs() < 1e-6,
                "pair joint sums to {total}, expected 1"
            );
            assert!(
                pair.joint.iter().flatten().all(|&p| p >= -1e-12),
                "negative pair-joint entry"
            );
        }
        // Cycle check over a → b edges.
        let parent: std::collections::HashMap<usize, usize> =
            pair_joints.iter().map(|p| (p.b, p.a)).collect();
        for pair in &pair_joints {
            let mut cursor = pair.a;
            let mut hops = 0;
            while let Some(&up) = parent.get(&cursor) {
                assert_ne!(up, pair.b, "pairwise joints form a cycle");
                cursor = up;
                hops += 1;
                assert!(hops <= self.models.len(), "pairwise joints form a cycle");
            }
        }
        self.pair_joints = pair_joints;
        self
    }

    /// The explicit pairwise joints (possibly empty).
    pub fn pairwise_joints(&self) -> &[PairwiseJoint] {
        &self.pair_joints
    }

    /// The pairwise joint conditioning input `b`, if any.
    pub fn pair_conditioning(&self, b: usize) -> Option<&PairwiseJoint> {
        self.pair_joints.iter().find(|p| p.b == b)
    }

    /// The spatial groups (possibly empty).
    pub fn groups(&self) -> &[InputGroup] {
        &self.groups
    }

    /// The group containing input `i`, if any, with `i`'s rank within it.
    pub fn group_of(&self, i: usize) -> Option<(usize, usize)> {
        for (g, group) in self.groups.iter().enumerate() {
            if let Some(rank) = group.members.iter().position(|&m| m == i) {
                return Some((g, rank));
            }
        }
        None
    }

    /// The *effective* transition distribution of input `i`, accounting for
    /// group membership and pairwise conditioning (for a conditioned input,
    /// the conditioning input's effective marginal pushed through the
    /// conditional).
    pub fn effective_distribution(&self, i: usize) -> TransitionDist {
        if let Some(pair) = self.pair_conditioning(i) {
            let pa = self.effective_distribution(pair.a).as_array();
            let rows = pair.conditional_rows();
            let mut m = [0.0f64; 4];
            for (a, &wa) in pa.iter().enumerate() {
                for (b, slot) in m.iter_mut().enumerate() {
                    *slot += wa * rows[a][b];
                }
            }
            return TransitionDist::new(m);
        }
        match self.group_of(i) {
            Some((g, _)) => self.groups[g].member_marginal(self.models[i]),
            None => self.models[i].to_distribution(),
        }
    }

    /// Number of inputs covered.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the spec covers no inputs.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// The model for input position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn model(&self, i: usize) -> InputModel {
        self.models[i]
    }

    /// All models.
    pub fn models(&self) -> &[InputModel] {
        &self.models
    }

    /// The CPT prior row for input `i` (group-adjusted), indexed by
    /// [`Transition::index`].
    pub(crate) fn prior_row(&self, i: usize) -> Vec<f64> {
        self.effective_distribution(i).as_array().to_vec()
    }
}

/// The most likely transition state of a distribution (ties favour the
/// lower state index).
///
/// # Example
///
/// ```
/// use swact::{most_likely, InputModel, Transition};
///
/// let d = InputModel::independent(0.9).to_distribution();
/// assert_eq!(most_likely(&d), Transition::Stable1);
/// ```
pub fn most_likely(dist: &TransitionDist) -> Transition {
    let arr = dist.as_array();
    let mut best = Transition::Stable0;
    for t in Transition::ALL {
        if arr[t.index()] > arr[best.index()] {
            best = t;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_model_distribution() {
        let m = InputModel::independent(0.3);
        let d = m.to_distribution();
        assert!((d.p(Transition::Stable0) - 0.49).abs() < 1e-12);
        assert!((d.p(Transition::Rise) - 0.21).abs() < 1e-12);
        assert!((d.p(Transition::Fall) - 0.21).abs() < 1e-12);
        assert!((d.p(Transition::Stable1) - 0.09).abs() < 1e-12);
        assert!(d.is_stationary(1e-12));
    }

    #[test]
    fn correlated_model_distribution() {
        let m = InputModel::new(0.5, 0.2).unwrap();
        let d = m.to_distribution();
        assert!((d.switching() - 0.2).abs() < 1e-12);
        assert!((d.p_one_next() - 0.5).abs() < 1e-12);
        assert!(d.is_stationary(1e-12));
    }

    #[test]
    fn infeasible_models_rejected() {
        assert!(matches!(
            InputModel::new(0.9, 0.5),
            Err(EstimateError::InvalidInputModel { .. })
        ));
        assert!(InputModel::new(1.5, 0.1).is_err());
        assert!(InputModel::new(0.5, -0.1).is_err());
    }

    #[test]
    fn spec_constructors() {
        let s = InputSpec::uniform(3);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.model(2).p1(), 0.5);
        let s = InputSpec::independent([0.1, 0.2]);
        assert!((s.prior_row(1)[3] - 0.04).abs() < 1e-12);
        let s = InputSpec::from_models(vec![]);
        assert!(s.is_empty());
    }

    #[test]
    fn most_likely_state() {
        let d = InputModel::independent(0.9).to_distribution();
        assert_eq!(most_likely(&d), Transition::Stable1);
    }

    fn group(copy_prob: f64) -> InputGroup {
        InputGroup {
            members: vec![0, 1],
            latent: InputModel::new(0.5, 0.3).unwrap(),
            copy_prob,
        }
    }

    #[test]
    fn member_marginal_extremes() {
        let own = InputModel::new(0.2, 0.1).unwrap();
        // copy_prob 0: member keeps its own distribution.
        let d = group(0.0).member_marginal(own);
        for (a, b) in d.as_array().iter().zip(own.to_distribution().as_array()) {
            assert!((a - b).abs() < 1e-12);
        }
        // copy_prob 1: member IS the latent.
        let d = group(1.0).member_marginal(own);
        let latent = group(1.0).latent.to_distribution();
        for (a, b) in d.as_array().iter().zip(latent.as_array()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn member_pair_joint_is_a_distribution_with_right_marginals() {
        for copy_prob in [0.0, 0.3, 0.7, 1.0] {
            let g = group(copy_prob);
            let a = InputModel::new(0.4, 0.2).unwrap();
            let b = InputModel::new(0.6, 0.4).unwrap();
            let joint = g.member_pair_joint(a, b);
            let total: f64 = joint.iter().flatten().sum();
            assert!((total - 1.0).abs() < 1e-12, "copy {copy_prob}");
            // Marginals must equal member_marginal.
            let ma = g.member_marginal(a).as_array();
            let mb = g.member_marginal(b).as_array();
            for s in 0..4 {
                let row: f64 = joint[s].iter().sum();
                let col: f64 = (0..4).map(|t| joint[t][s]).sum();
                assert!((row - ma[s]).abs() < 1e-12);
                assert!((col - mb[s]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn full_copy_members_are_identical() {
        let g = group(1.0);
        let a = InputModel::independent(0.2);
        let joint = g.member_pair_joint(a, InputModel::independent(0.9));
        for (s, row) in joint.iter().enumerate() {
            for (t, &mass) in row.iter().enumerate() {
                if s != t {
                    assert!(mass.abs() < 1e-12, "off-diagonal mass at ({s},{t})");
                }
            }
        }
    }

    #[test]
    fn independent_members_factorize() {
        let g = group(0.0);
        let a = InputModel::independent(0.3);
        let b = InputModel::new(0.7, 0.2).unwrap();
        let joint = g.member_pair_joint(a, b);
        let da = a.to_distribution().as_array();
        let db = b.to_distribution().as_array();
        for s in 0..4 {
            for t in 0..4 {
                assert!((joint[s][t] - da[s] * db[t]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn group_validation() {
        let spec = InputSpec::uniform(4).with_groups(vec![InputGroup {
            members: vec![0, 2],
            latent: InputModel::independent(0.5),
            copy_prob: 0.8,
        }]);
        assert_eq!(spec.group_of(2), Some((0, 1)));
        assert_eq!(spec.group_of(1), None);
        // Effective distribution of grouped members shifts towards latent
        // only in correlation, not in marginal here (same marginals).
        let d = spec.effective_distribution(0);
        assert!((d.p_one_next() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "multiple groups")]
    fn overlapping_groups_rejected() {
        let g1 = InputGroup {
            members: vec![0, 1],
            latent: InputModel::independent(0.5),
            copy_prob: 0.5,
        };
        let g2 = InputGroup {
            members: vec![1, 2],
            latent: InputModel::independent(0.5),
            copy_prob: 0.5,
        };
        let _ = InputSpec::uniform(3).with_groups(vec![g1, g2]);
    }
}
