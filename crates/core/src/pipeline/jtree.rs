//! The junction-tree (HUGIN) inference backend — the paper's method and
//! the default.

use std::sync::Mutex;

use swact_bayesnet::{
    force_order, initial_potentials, CompiledTree, Factor, Heuristic, JunctionTree, MessageCache,
    PropagationMode, PropagationState, VarId,
};
use swact_circuit::LineId;

use crate::estimator::Options;
use crate::pipeline::backend::{
    CompiledSegment, InferenceBackend, RootDists, SegmentPosterior, SegmentStats,
};
use crate::pipeline::model::{InputPair, PairRoot, SegmentModel};
use crate::segment::RootSource;
use crate::strategy::OrderingStrategy;
use crate::{EstimateError, InputSpec, TransitionDist};

/// Exact junction-tree propagation over the 4-state LIDAG. Supports input
/// groups, explicit pairwise joints, and boundary-correlation forwarding —
/// the only backend that can export pairwise joints across segment
/// boundaries.
#[derive(Debug, Clone, Copy, Default)]
pub struct JtreeBackend;

/// The junction-tree propagation artifact of one segment.
pub(crate) struct JtreeSegment {
    /// The immutable propagation artifact: junction tree, message
    /// schedule, and initial clique potentials with *uniform* root priors
    /// baked in; the actual priors are injected per estimate as likelihood
    /// weights (mathematically identical, but reuses this cached product).
    pub(crate) compiled: CompiledTree,
    /// Reusable per-request propagation states. Each propagate call pops
    /// one (or creates one on first use), propagates, and returns it, so
    /// steady-state estimation allocates no fresh potentials — the piece
    /// that makes concurrent batch estimation over one compile cheap.
    pub(crate) states: Mutex<Vec<PropagationState>>,
    /// Shared per-edge collect-message cache: concurrent and consecutive
    /// propagations over this compile reuse messages whose evidence
    /// dependencies are bit-identical. Lives (and is evicted) with the
    /// compiled artifact.
    pub(crate) msg_cache: MessageCache,
    /// Whether propagations may *read* the message cache (baked in from
    /// [`Options::incremental`] at compile time, since `propagate` has no
    /// options parameter).
    pub(crate) incremental: bool,
    /// Whether this segment touches the message cache *at all*. Tiny
    /// single-clique segments (c17-scale) spend more on hashing evidence
    /// signatures per edge than a full recompute costs, so when the
    /// compiled tree's own cost model says hashing cannot pay for itself
    /// the segment propagates with plain [`CompiledTree::calibrate`] —
    /// bit-identical to the cached path by construction, warm ≡ cold
    /// trivially.
    pub(crate) cache_worthwhile: bool,
    pub(crate) solo_roots: Vec<(LineId, VarId, RootSource)>,
    pub(crate) pair_roots: Vec<PairRoot>,
    pub(crate) input_pairs: Vec<InputPair>,
    pub(crate) gates: Vec<(LineId, VarId)>,
}

/// The 4×4 conditional rows `P(child | parent)` a grouped or explicitly
/// paired primary-input pair injects — shared by `propagate` (which
/// multiplies them in) and `root_signature` (which hashes them).
fn input_pair_rows(spec: &InputSpec, pair: &InputPair) -> [[f64; 4]; 4] {
    match pair.group {
        Some(group) => {
            let joint = spec.groups()[group]
                .member_pair_joint(spec.model(pair.parent_pos), spec.model(pair.child_pos));
            let mut rows = [[0.25f64; 4]; 4];
            for (a, row) in joint.iter().enumerate() {
                let mass: f64 = row.iter().sum();
                if mass > 0.0 {
                    for (b, &p) in row.iter().enumerate() {
                        rows[a][b] = p / mass;
                    }
                }
            }
            rows
        }
        None => spec
            .pair_conditioning(pair.child_pos)
            .expect("signature guarantees the pair exists")
            .conditional_rows(),
    }
}

/// Compiles a FORCE-guided junction tree: lay out the net's family
/// hypergraph ({variable} ∪ parents per variable — exactly the edges
/// moralization turns into cliques) with the deterministic FORCE
/// iteration, then rerun the greedy heuristic with layout positions as
/// its tie-break. Raw layout-order elimination loses badly to min-fill,
/// but greedy scores tie constantly on circuit graphs, and steering those
/// ties toward layout-local nodes is where FORCE can win. `None` when
/// compilation fails, which simply withdraws the candidate.
fn force_tree(model: &SegmentModel, heuristic: Heuristic) -> Option<JunctionTree> {
    let net = &model.net;
    let hyperedges: Vec<Vec<usize>> = net
        .var_ids()
        .map(|v| {
            let mut family: Vec<usize> = net.parents(v).iter().map(|p| p.index()).collect();
            family.push(v.index());
            family
        })
        .collect();
    let order = force_order(net.num_vars(), &hyperedges);
    let mut position = vec![0usize; order.len()];
    for (pos, &node) in order.iter().enumerate() {
        position[node] = pos;
    }
    JunctionTree::compile_with_preference(net, heuristic, &position).ok()
}

impl InferenceBackend for JtreeBackend {
    fn name(&self) -> &'static str {
        "jtree"
    }

    fn compile(
        &self,
        model: &SegmentModel,
        options: &Options,
    ) -> Result<CompiledSegment, EstimateError> {
        let tree = JunctionTree::compile_with(&model.net, options.heuristic)?;
        // Under the FORCE ordering strategy, also compile the FORCE-guided
        // candidate (greedy heuristic with layout-position tie-breaks). The
        // candidate only stays in the race when its clique state space is
        // no larger than greedy's — the memory guard that lets us build
        // both potential sets below and keep whichever is cheaper.
        let force_candidate: Option<JunctionTree> = if options.strategy.ordering
            == OrderingStrategy::Force
        {
            force_tree(model, options.heuristic).filter(|t| t.total_states() <= tree.total_states())
        } else {
            None
        };
        // Boundary-correlation edges can widen the tree; report a severe
        // blowup so the driver can fall back to plain marginal forwarding
        // for this segment (keeping the planned budget meaningful) —
        // crucially *before* materializing the oversized potentials. The
        // admission checks run against the smallest tree available, so a
        // FORCE order that fits can rescue a greedy order that does not.
        let admit = |states: f64| -> Result<(), EstimateError> {
            if !model.pair_roots.is_empty()
                && !options.single_bn
                && states > 4.0 * options.segment_budget as f64
            {
                return Err(EstimateError::CorrelationBlowup {
                    states,
                    budget: options.segment_budget as f64,
                });
            }
            if options.single_bn && states > options.segment_budget as f64 {
                return Err(EstimateError::TooLarge {
                    states,
                    budget: options.segment_budget as f64,
                });
            }
            Ok(())
        };
        let best_states = force_candidate
            .as_ref()
            .map_or(tree.total_states(), |t| t.total_states());
        admit(best_states)?;
        let build = |tree: JunctionTree, force_ordered: bool| -> (SegmentStats, CompiledTree) {
            let init_potentials = initial_potentials(&tree, &model.net);
            let total_states = tree.total_states();
            let max_clique_states = tree.max_clique_states();
            let compiled = CompiledTree::from_parts_with_kernel(
                tree,
                init_potentials,
                options.sparse,
                options.kernel,
            );
            (
                SegmentStats {
                    total_states,
                    max_clique_states,
                    nnz: compiled.nnz(),
                    state_space: compiled.state_space(),
                    compressed_cliques: compiled.compressed_cliques(),
                    kernel_cost: compiled.kernel_cost(),
                    force_ordered,
                },
                compiled,
            )
        };
        let (stats, compiled) = match force_candidate {
            None => build(tree, false),
            Some(forced) if admit(tree.total_states()).is_err() => {
                // Only the FORCE tree fits — no comparison possible.
                build(forced, true)
            }
            Some(forced) => {
                // Both fit: keep the cheaper propagation artifact; a tie
                // goes to greedy so the default stays deterministic.
                let greedy = build(tree, false);
                let candidate = build(forced, true);
                if candidate.0.kernel_cost < greedy.0.kernel_cost {
                    candidate
                } else {
                    greedy
                }
            }
        };
        let msg_cache = compiled.new_message_cache();
        let cache_worthwhile = compiled.message_cache_worthwhile();
        Ok(CompiledSegment::new(
            Box::new(JtreeSegment {
                compiled,
                states: Mutex::new(Vec::new()),
                msg_cache,
                incremental: options.incremental,
                cache_worthwhile,
                solo_roots: model.solo_roots.clone(),
                pair_roots: model.pair_roots.clone(),
                input_pairs: model.input_pairs.clone(),
                gates: model.gates.clone(),
            }),
            stats,
            model.line_vars.clone(),
        ))
    }

    /// Initializes, calibrates, and reads out one segment's Bayesian
    /// network. Pure with respect to the global state (reads the forwarded
    /// `roots`, returns its contributions), so segments within a wave can
    /// run on separate threads.
    fn propagate(
        &self,
        segment: &CompiledSegment,
        roots: &RootDists<'_>,
    ) -> Result<SegmentPosterior, EstimateError> {
        let art = segment
            .artifact()
            .downcast_ref::<JtreeSegment>()
            .expect("jtree backend propagates jtree artifacts");
        let spec = roots.spec;
        let compiled = &art.compiled;
        // Reuse a pooled per-request state when one is available; its
        // buffers survive across requests, so a warm pool propagates
        // without allocating new potentials.
        let mut state = {
            let mut pool = art.states.lock().expect("state pool lock");
            pool.pop()
        }
        .unwrap_or_else(|| compiled.new_state());
        state.clear_evidence();
        // The cached potentials carry uniform (1/4) root priors; weighting
        // state s by 4*P(s) as likelihood evidence reproduces the exact
        // prior after normalization.
        for &(line, var, source) in &art.solo_roots {
            let prior = match source {
                RootSource::PrimaryInput(pos) => spec.prior_row(pos),
                RootSource::Boundary => roots.dists[line.index()].as_array().to_vec(),
            };
            compiled.set_likelihood(&mut state, var, prior.iter().map(|p| 4.0 * p).collect())?;
        }
        // Grouped primary inputs: inject 4*P(child | parent) from the
        // closed-form pair joint of the group model; explicitly paired
        // inputs take their conditional from the spec.
        for pair in &art.input_pairs {
            let rows = input_pair_rows(spec, pair);
            let mut values = Vec::with_capacity(16);
            for row in &rows {
                for &conditional in row {
                    values.push(4.0 * conditional);
                }
            }
            debug_assert!(pair.parent_var < pair.var);
            compiled.insert_factor(
                &mut state,
                Factor::new(vec![(pair.parent_var, 4), (pair.var, 4)], values),
            )?;
        }
        // Correlated boundary roots: multiply 4*P(c|p) over the cached
        // uniform conditional, restoring the producer's pairwise joint.
        for pair in &art.pair_roots {
            let cond = roots.conditionals[pair.slot].expect("producer wave precedes consumers");
            debug_assert!(
                pair.parent_var < pair.var,
                "children are added after parents"
            );
            let values: Vec<f64> = cond.iter().map(|&p| 4.0 * p).collect();
            compiled.insert_factor(
                &mut state,
                Factor::new(vec![(pair.parent_var, 4), (pair.var, 4)], values),
            )?;
        }
        // Warm states may reuse cached collect messages (bit-identical by
        // construction); with incremental propagation off the state runs
        // cold but still refreshes the cache. Segments whose compiled cost
        // model says evidence-signature hashing outweighs the recompute it
        // saves bypass the cache machinery entirely.
        let (messages_reused, messages_recomputed) = if art.cache_worthwhile {
            state.set_mode(if art.incremental {
                PropagationMode::Warm
            } else {
                PropagationMode::Cold
            });
            compiled.calibrate_with_cache(&mut state, &art.msg_cache)
        } else {
            compiled.calibrate(&mut state);
            (0, 0)
        };
        let gate_dists = art
            .gates
            .iter()
            .map(|&(line, var)| {
                let m = compiled.marginal(&state, var);
                (line, TransitionDist::new([m[0], m[1], m[2], m[3]]))
            })
            .collect();
        // Serve requested line-pair joints from this segment.
        let mut joints = Vec::new();
        for &(var_a, var_b, idx) in roots.joint_requests {
            if var_a == var_b {
                continue;
            }
            if let Some(joint) = compiled.pairwise_marginal_scratch(&mut state, var_a, var_b) {
                let a_first = joint.vars()[0] == var_a;
                let mut out = [[0.0f64; 4]; 4];
                for (a_state, row) in out.iter_mut().enumerate() {
                    for (b_state, slot) in row.iter_mut().enumerate() {
                        let k = if a_first {
                            a_state * 4 + b_state
                        } else {
                            b_state * 4 + a_state
                        };
                        *slot = joint.values()[k];
                    }
                }
                joints.push((idx, out));
            }
        }
        // Export pairwise joints for later segments.
        let mut exports = Vec::new();
        for export in roots.exports {
            let joint = compiled
                .pairwise_marginal_scratch(&mut state, export.parent_var, export.child_var)
                .expect("export pairs share a component by construction");
            let parent_first = joint.vars()[0] == export.parent_var;
            let mut cond = [0.0f64; 16];
            for p in 0..4 {
                let mut row = [0.0f64; 4];
                for (c, slot) in row.iter_mut().enumerate() {
                    let idx = if parent_first { p * 4 + c } else { c * 4 + p };
                    *slot = joint.values()[idx];
                }
                let mass: f64 = row.iter().sum();
                for (c, &v) in row.iter().enumerate() {
                    // Zero-mass parent states get a uniform row; they never
                    // matter because P(parent = p) is zero.
                    cond[p * 4 + c] = if mass > 0.0 { v / mass } else { 0.25 };
                }
            }
            exports.push((export.slot, cond));
        }
        art.states.lock().expect("state pool lock").push(state);
        Ok(SegmentPosterior {
            gate_dists,
            exports,
            joints,
            messages_reused,
            messages_recomputed,
            accuracy: None,
        })
    }

    /// Hashes exactly what `propagate` reads from `roots`: solo-root
    /// priors (spec rows for primary inputs, forwarded marginals for
    /// boundary lines), input-pair conditional rows, forwarded boundary
    /// conditionals, and the joint requests routed to this segment. Equal
    /// signatures therefore guarantee bit-identical posteriors.
    fn root_signature(&self, segment: &CompiledSegment, roots: &RootDists<'_>) -> Option<u128> {
        let art = segment.artifact().downcast_ref::<JtreeSegment>()?;
        let spec = roots.spec;
        let mut h = sig::OFFSET;
        for &(line, _, source) in &art.solo_roots {
            h = sig::word(h, line.index() as u64);
            match source {
                RootSource::PrimaryInput(pos) => {
                    for p in spec.prior_row(pos) {
                        h = sig::word(h, p.to_bits());
                    }
                }
                RootSource::Boundary => {
                    for p in roots.dists[line.index()].as_array() {
                        h = sig::word(h, p.to_bits());
                    }
                }
            }
        }
        for pair in &art.input_pairs {
            h = sig::word(h, pair.child_pos as u64);
            for row in input_pair_rows(spec, pair) {
                for p in row {
                    h = sig::word(h, p.to_bits());
                }
            }
        }
        for pair in &art.pair_roots {
            h = sig::word(h, pair.slot as u64);
            let cond = roots.conditionals[pair.slot]?;
            for p in cond {
                h = sig::word(h, p.to_bits());
            }
        }
        for &(var_a, var_b, idx) in roots.joint_requests {
            h = sig::word(h, var_a.index() as u64);
            h = sig::word(h, var_b.index() as u64);
            h = sig::word(h, idx as u64);
        }
        Some(h)
    }

    fn correlation_distance(
        &self,
        segment: &CompiledSegment,
        child: LineId,
        candidate: LineId,
    ) -> Option<usize> {
        let art = segment.artifact().downcast_ref::<JtreeSegment>()?;
        let child_var = *segment.lines().get(&child)?;
        let cand_var = *segment.lines().get(&candidate)?;
        let tree = art.compiled.tree();
        tree.clique_distance(tree.home_clique(child_var), tree.home_clique(cand_var))
    }
}

/// 128-bit FNV-1a for root signatures. Wide enough that an accidental
/// collision (which would silently serve a stale posterior) is out of
/// reach for any realistic sweep length.
mod sig {
    pub(super) const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

    pub(super) fn word(mut h: u128, word: u64) -> u128 {
        for byte in word.to_le_bytes() {
            h ^= u128::from(byte);
            h = h.wrapping_mul(PRIME);
        }
        h
    }
}
