//! Stage 4: boundary-forwarding order.
//!
//! Segments are grouped into dependency waves: every segment's boundary
//! producers live in strictly earlier waves, so segments within one wave
//! are independent and may propagate on separate threads — the paper's §5
//! observation that junction-tree messages on disjoint branches are
//! independent, lifted to segment granularity.

use std::collections::HashMap;

use swact_circuit::LineId;

use crate::segment::{RootSource, Segment, SegmentationPlan};

/// The topological wave order segments propagate in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaveSchedule {
    waves: Vec<Vec<usize>>,
}

impl WaveSchedule {
    /// Derives the wave schedule of a segmentation plan:
    /// `wave(s) = 1 + max(wave of s's boundary producers)`.
    pub fn from_plan(plan: &SegmentationPlan) -> WaveSchedule {
        WaveSchedule::from_segments(plan.segments())
    }

    /// Derives the wave schedule of an explicit segment list — used after
    /// the degradation ladder replans segments, when the final list no
    /// longer matches the original plan.
    pub(crate) fn from_segments(segments: &[Segment]) -> WaveSchedule {
        let mut produced_in: HashMap<LineId, usize> = HashMap::new();
        let mut wave_of = vec![0usize; segments.len()];
        for (s_idx, seg) in segments.iter().enumerate() {
            wave_of[s_idx] = seg
                .roots
                .iter()
                .filter(|(_, source)| *source == RootSource::Boundary)
                .map(|(line, _)| wave_of[produced_in[line]] + 1)
                .max()
                .unwrap_or(0);
            for &line in &seg.gates {
                produced_in.insert(line, s_idx);
            }
        }
        let num_waves = wave_of.iter().max().map_or(0, |&w| w + 1);
        let mut waves: Vec<Vec<usize>> = vec![Vec::new(); num_waves];
        for (s_idx, &w) in wave_of.iter().enumerate() {
            waves[w].push(s_idx);
        }
        WaveSchedule { waves }
    }

    /// Rebuilds a schedule from its serialized wave lists (artifact load).
    pub(crate) fn from_waves(waves: Vec<Vec<usize>>) -> WaveSchedule {
        WaveSchedule { waves }
    }

    /// The waves, each a list of segment indices, in propagation order.
    pub fn waves(&self) -> &[Vec<usize>] {
        &self.waves
    }

    /// Number of waves.
    pub fn num_waves(&self) -> usize {
        self.waves.len()
    }
}
