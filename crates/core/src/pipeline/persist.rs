//! Serialization of a whole [`CompiledPipeline`] — the payload of the
//! on-disk artifact format in [`crate::artifact`].
//!
//! The encoding is *self-contained*: it carries the working circuit
//! (replayed structurally through [`CircuitBuilder`], which assigns line
//! ids in declaration order so indices round-trip exactly), the full
//! [`Options`], the final post-degradation segment artifacts, export
//! routing, and the wave schedule. Loading therefore needs nothing but the
//! bytes — no original netlist, no recompilation — and produces a pipeline
//! whose estimates are bit-identical (`f64::to_bits`) to the one that was
//! persisted, because every potential, projection table, and BDD node
//! travels as its exact bit pattern via the [`swact_bayesnet::codec`]
//! primitives.
//!
//! Per-process mutable state (propagation-state pools, message caches, the
//! posterior memo, BDD apply caches) is deliberately *not* serialized; it
//! is recreated empty at load and warms up per process.
//!
//! Decoding trusts its input only as far as not panicking: every length is
//! bounds-checked and cross-references are validated, so corrupt bytes
//! yield a [`CodecError`]. Integrity is the artifact layer's job (the
//! payload checksum is verified before this decoder runs).

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;

use swact_bayesnet::codec::{read_compiled_tree, write_compiled_tree, CodecError, Reader, Writer};
use swact_bayesnet::{Heuristic, KernelMode, SparseMode, VarId};
use swact_bdd::{Bdd, NodeId};
use swact_circuit::{Circuit, CircuitBuilder, Driver, GateKind, LineId};

use crate::budget::{Budget, DegradationCause, DegradationReport, Fallback};
use crate::estimator::Options;
use crate::pipeline::backend::{backend_impl, Backend, CompiledSegment, SegmentStats};
use crate::pipeline::bddexact::{BddSegment, GateNodes};
use crate::pipeline::jtree::JtreeSegment;
use crate::pipeline::model::{Export, InputPair, PairRoot};
use crate::pipeline::plan::PlannedCircuit;
use crate::pipeline::sampling::SamplingSegment;
use crate::pipeline::twostate::TwoStateSegment;
use crate::pipeline::{CompiledPipeline, StageTimings, WaveSchedule};
use crate::segment::{RootSource, SegmentationPlan};
use crate::strategy::{OrderingStrategy, SegmentationStrategy, StructureStrategy};
use crate::SegmentTimings;

fn malformed(message: impl Into<String>) -> CodecError {
    CodecError::Malformed(message.into())
}

// ---------------------------------------------------------------------------
// Small shared pieces
// ---------------------------------------------------------------------------

fn write_line(w: &mut Writer, line: LineId) {
    w.u32(line.index() as u32);
}

fn read_line(r: &mut Reader<'_>, num_lines: usize) -> Result<LineId, CodecError> {
    let idx = r.u32()? as usize;
    if idx >= num_lines {
        return Err(malformed(format!("line index {idx} out of {num_lines}")));
    }
    Ok(LineId::from_index(idx))
}

fn write_var(w: &mut Writer, var: VarId) {
    w.u32(var.index() as u32);
}

fn read_var(r: &mut Reader<'_>) -> Result<VarId, CodecError> {
    Ok(VarId::from_index(r.u32()? as usize))
}

fn write_duration(w: &mut Writer, d: Duration) {
    w.u64(d.as_nanos() as u64);
}

fn read_duration(r: &mut Reader<'_>) -> Result<Duration, CodecError> {
    Ok(Duration::from_nanos(r.u64()?))
}

fn write_root_source(w: &mut Writer, source: RootSource) {
    match source {
        RootSource::PrimaryInput(pos) => {
            w.u8(0);
            w.usize(pos);
        }
        RootSource::Boundary => w.u8(1),
    }
}

fn read_root_source(r: &mut Reader<'_>) -> Result<RootSource, CodecError> {
    match r.u8()? {
        0 => Ok(RootSource::PrimaryInput(r.usize()?)),
        1 => Ok(RootSource::Boundary),
        other => Err(malformed(format!("unknown root-source tag {other}"))),
    }
}

fn backend_tag(backend: Backend) -> u8 {
    match backend {
        Backend::Jtree => 0,
        Backend::Bdd => 1,
        Backend::TwoState => 2,
        Backend::Sampling => 3,
    }
}

fn backend_from_tag(tag: u8) -> Result<Backend, CodecError> {
    match tag {
        0 => Ok(Backend::Jtree),
        1 => Ok(Backend::Bdd),
        2 => Ok(Backend::TwoState),
        3 => Ok(Backend::Sampling),
        other => Err(malformed(format!("unknown backend tag {other}"))),
    }
}

// ---------------------------------------------------------------------------
// Circuit: structural replay through CircuitBuilder
// ---------------------------------------------------------------------------

pub(crate) fn write_circuit(w: &mut Writer, circuit: &Circuit) {
    w.str(circuit.name());
    w.usize(circuit.num_lines());
    for idx in 0..circuit.num_lines() {
        let line = LineId::from_index(idx);
        w.str(circuit.line_name(line));
        match circuit.driver(line) {
            Driver::Input => w.u8(0),
            Driver::Gate(gate) => {
                w.u8(1);
                let kind = GateKind::ALL
                    .iter()
                    .position(|&k| k == gate.kind)
                    .expect("GateKind::ALL is exhaustive");
                w.u8(kind as u8);
                w.usize(gate.inputs.len());
                for &input in &gate.inputs {
                    write_line(w, input);
                }
            }
        }
    }
    w.usize(circuit.outputs().len());
    for &output in circuit.outputs() {
        write_line(w, output);
    }
}

/// One decoded line record: its name, and for gate lines the kind plus
/// input line indices (inputs may point at lines declared later).
type LineRecord = (String, Option<(GateKind, Vec<usize>)>);

fn read_circuit(r: &mut Reader<'_>) -> Result<Circuit, CodecError> {
    let name = r.str()?;
    let num_lines = r.len(2)?;
    // Gate inputs may reference lines declared later, so collect every
    // record first and replay through the builder once all names exist.
    let mut records: Vec<LineRecord> = Vec::with_capacity(num_lines);
    for _ in 0..num_lines {
        let line_name = r.str()?;
        let driver = match r.u8()? {
            0 => None,
            1 => {
                let kind_idx = r.u8()? as usize;
                let kind = *GateKind::ALL
                    .get(kind_idx)
                    .ok_or_else(|| malformed(format!("unknown gate kind {kind_idx}")))?;
                let n_inputs = r.len(4)?;
                let mut inputs = Vec::with_capacity(n_inputs);
                for _ in 0..n_inputs {
                    let idx = r.u32()? as usize;
                    if idx >= num_lines {
                        return Err(malformed("gate input references a missing line"));
                    }
                    inputs.push(idx);
                }
                Some((kind, inputs))
            }
            other => return Err(malformed(format!("unknown driver tag {other}"))),
        };
        records.push((line_name, driver));
    }
    let num_outputs = r.len(4)?;
    let mut outputs = Vec::with_capacity(num_outputs);
    for _ in 0..num_outputs {
        let idx = r.u32()? as usize;
        if idx >= num_lines {
            return Err(malformed("output references a missing line"));
        }
        outputs.push(idx);
    }
    let mut builder = CircuitBuilder::new(name);
    for (line_name, driver) in &records {
        match driver {
            None => builder.input(line_name),
            Some((kind, inputs)) => {
                let input_names: Vec<&str> =
                    inputs.iter().map(|&i| records[i].0.as_str()).collect();
                builder.gate(line_name, *kind, &input_names)
            }
        }
        .map_err(|e| malformed(format!("circuit replay: {e}")))?;
    }
    for &idx in &outputs {
        builder
            .output(&records[idx].0)
            .map_err(|e| malformed(format!("circuit replay: {e}")))?;
    }
    builder
        .finish()
        .map_err(|e| malformed(format!("circuit replay: {e}")))
}

// ---------------------------------------------------------------------------
// Options (including the resource budget)
// ---------------------------------------------------------------------------

pub(crate) fn write_options(w: &mut Writer, options: &Options) {
    w.u8(match options.heuristic {
        Heuristic::MinFill => 0,
        Heuristic::MinDegree => 1,
    });
    w.usize(options.max_fanin);
    w.usize(options.segment_budget);
    w.usize(options.check_interval);
    w.bool(options.single_bn);
    w.bool(options.boundary_correlation);
    w.u8(match options.sparse {
        SparseMode::Auto => 0,
        SparseMode::On => 1,
        SparseMode::Off => 2,
    });
    w.u8(backend_tag(options.backend));
    match options.budget.max_states {
        None => w.u8(0),
        Some(v) => {
            w.u8(1);
            w.f64_bits(v);
        }
    }
    match options.budget.max_factor_bytes {
        None => w.u8(0),
        Some(v) => {
            w.u8(1);
            w.usize(v);
        }
    }
    match options.budget.deadline {
        None => w.u8(0),
        Some(d) => {
            w.u8(1);
            write_duration(w, d);
        }
    }
    w.bool(options.no_fallback);
    w.bool(options.incremental);
    w.u8(match options.strategy.ordering {
        OrderingStrategy::Greedy => 0,
        OrderingStrategy::Force => 1,
    });
    w.u8(match options.strategy.segmentation {
        SegmentationStrategy::TopoCover => 0,
        SegmentationStrategy::BalancedCut => 1,
    });
    // Format version 3: sampling-backend fields. Appended after the
    // segmentation tag so earlier fields keep their version-2 offsets.
    w.u64(options.seed);
    w.f64_bits(options.ci_half_width);
    w.f64_bits(options.ci_z);
    // Format version 4: propagation kernel flavor. Feeding the tag into
    // the payload (and thus the checksum and model key) is what keeps
    // scalar and simd artifacts from ever sharing a cache slot.
    w.u8(match options.kernel {
        KernelMode::Scalar => 0,
        KernelMode::Simd => 1,
    });
}

fn read_options(r: &mut Reader<'_>) -> Result<Options, CodecError> {
    let heuristic = match r.u8()? {
        0 => Heuristic::MinFill,
        1 => Heuristic::MinDegree,
        other => return Err(malformed(format!("unknown heuristic tag {other}"))),
    };
    let max_fanin = r.usize()?;
    let segment_budget = r.usize()?;
    let check_interval = r.usize()?;
    let single_bn = r.bool()?;
    let boundary_correlation = r.bool()?;
    let sparse = match r.u8()? {
        0 => SparseMode::Auto,
        1 => SparseMode::On,
        2 => SparseMode::Off,
        other => return Err(malformed(format!("unknown sparse tag {other}"))),
    };
    let backend = backend_from_tag(r.u8()?)?;
    let max_states = match r.u8()? {
        0 => None,
        1 => Some(r.f64_bits()?),
        other => return Err(malformed(format!("bad option byte {other}"))),
    };
    let max_factor_bytes = match r.u8()? {
        0 => None,
        1 => Some(r.usize()?),
        other => return Err(malformed(format!("bad option byte {other}"))),
    };
    let deadline = match r.u8()? {
        0 => None,
        1 => Some(read_duration(r)?),
        other => return Err(malformed(format!("bad option byte {other}"))),
    };
    let no_fallback = r.bool()?;
    let incremental = r.bool()?;
    let ordering = match r.u8()? {
        0 => OrderingStrategy::Greedy,
        1 => OrderingStrategy::Force,
        other => return Err(malformed(format!("unknown ordering tag {other}"))),
    };
    let segmentation = match r.u8()? {
        0 => SegmentationStrategy::TopoCover,
        1 => SegmentationStrategy::BalancedCut,
        other => return Err(malformed(format!("unknown segmentation tag {other}"))),
    };
    let seed = r.u64()?;
    let ci_half_width = r.f64_bits()?;
    let ci_z = r.f64_bits()?;
    let kernel = match r.u8()? {
        0 => KernelMode::Scalar,
        1 => KernelMode::Simd,
        other => return Err(malformed(format!("unknown kernel tag {other}"))),
    };
    Ok(Options {
        heuristic,
        max_fanin,
        segment_budget,
        check_interval,
        single_bn,
        boundary_correlation,
        sparse,
        kernel,
        backend,
        budget: Budget {
            max_states,
            max_factor_bytes,
            deadline,
        },
        no_fallback,
        incremental,
        strategy: StructureStrategy {
            ordering,
            segmentation,
        },
        seed,
        ci_half_width,
        ci_z,
    })
}

// ---------------------------------------------------------------------------
// Degradation provenance
// ---------------------------------------------------------------------------

fn write_degradation(w: &mut Writer, report: &DegradationReport) {
    w.usize(report.segment);
    match report.cause {
        DegradationCause::StateBudget { estimated, budget } => {
            w.u8(0);
            w.f64_bits(estimated);
            w.f64_bits(budget);
        }
        DegradationCause::FactorBytes { bytes, budget } => {
            w.u8(1);
            w.usize(bytes);
            w.usize(budget);
        }
    }
    match report.fallback {
        Fallback::Replanned { subsegments } => {
            w.u8(0);
            w.usize(subsegments);
        }
        Fallback::TwoState => w.u8(1),
        Fallback::Sampling => w.u8(2),
    }
}

fn read_degradation(r: &mut Reader<'_>) -> Result<DegradationReport, CodecError> {
    let segment = r.usize()?;
    let cause = match r.u8()? {
        0 => DegradationCause::StateBudget {
            estimated: r.f64_bits()?,
            budget: r.f64_bits()?,
        },
        1 => DegradationCause::FactorBytes {
            bytes: r.usize()?,
            budget: r.usize()?,
        },
        other => return Err(malformed(format!("unknown degradation cause {other}"))),
    };
    let fallback = match r.u8()? {
        0 => Fallback::Replanned {
            subsegments: r.usize()?,
        },
        1 => Fallback::TwoState,
        2 => Fallback::Sampling,
        other => return Err(malformed(format!("unknown fallback tag {other}"))),
    };
    Ok(DegradationReport {
        segment,
        cause,
        fallback,
    })
}

// ---------------------------------------------------------------------------
// Segment artifacts (one per backend)
// ---------------------------------------------------------------------------

fn write_jtree_segment(w: &mut Writer, seg: &JtreeSegment) {
    write_compiled_tree(w, &seg.compiled);
    w.usize(seg.solo_roots.len());
    for &(line, var, source) in &seg.solo_roots {
        write_line(w, line);
        write_var(w, var);
        write_root_source(w, source);
    }
    w.usize(seg.pair_roots.len());
    for pair in &seg.pair_roots {
        write_var(w, pair.var);
        write_var(w, pair.parent_var);
        w.usize(pair.slot);
    }
    w.usize(seg.input_pairs.len());
    for pair in &seg.input_pairs {
        write_var(w, pair.var);
        write_var(w, pair.parent_var);
        w.usize(pair.child_pos);
        w.usize(pair.parent_pos);
        match pair.group {
            None => w.u8(0),
            Some(g) => {
                w.u8(1);
                w.usize(g);
            }
        }
    }
    w.usize(seg.gates.len());
    for &(line, var) in &seg.gates {
        write_line(w, line);
        write_var(w, var);
    }
}

fn read_jtree_segment(
    r: &mut Reader<'_>,
    num_lines: usize,
    options: &Options,
) -> Result<JtreeSegment, CodecError> {
    let compiled = read_compiled_tree(r)?;
    let n_solo = r.len(9)?;
    let mut solo_roots = Vec::with_capacity(n_solo);
    for _ in 0..n_solo {
        let line = read_line(r, num_lines)?;
        let var = read_var(r)?;
        let source = read_root_source(r)?;
        solo_roots.push((line, var, source));
    }
    let n_pairs = r.len(16)?;
    let mut pair_roots = Vec::with_capacity(n_pairs);
    for _ in 0..n_pairs {
        pair_roots.push(PairRoot {
            var: read_var(r)?,
            parent_var: read_var(r)?,
            slot: r.usize()?,
        });
    }
    let n_input_pairs = r.len(25)?;
    let mut input_pairs = Vec::with_capacity(n_input_pairs);
    for _ in 0..n_input_pairs {
        input_pairs.push(InputPair {
            var: read_var(r)?,
            parent_var: read_var(r)?,
            child_pos: r.usize()?,
            parent_pos: r.usize()?,
            group: match r.u8()? {
                0 => None,
                1 => Some(r.usize()?),
                other => return Err(malformed(format!("bad group byte {other}"))),
            },
        });
    }
    let n_gates = r.len(8)?;
    let mut gates = Vec::with_capacity(n_gates);
    for _ in 0..n_gates {
        let line = read_line(r, num_lines)?;
        let var = read_var(r)?;
        gates.push((line, var));
    }
    let msg_cache = compiled.new_message_cache();
    // Re-derived, not persisted: the decision is a pure function of the
    // decoded compiled tree, so a loaded artifact decides identically to
    // the original compile.
    let cache_worthwhile = compiled.message_cache_worthwhile();
    Ok(JtreeSegment {
        compiled,
        states: Mutex::new(Vec::new()),
        msg_cache,
        incremental: options.incremental,
        cache_worthwhile,
        solo_roots,
        pair_roots,
        input_pairs,
        gates,
    })
}

fn write_twostate_segment(w: &mut Writer, seg: &TwoStateSegment) {
    write_compiled_tree(w, &seg.compiled);
    w.usize(seg.roots.len());
    for &(line, var, source) in &seg.roots {
        write_line(w, line);
        write_var(w, var);
        write_root_source(w, source);
    }
    w.usize(seg.gates.len());
    for &(line, var) in &seg.gates {
        write_line(w, line);
        write_var(w, var);
    }
}

fn read_twostate_segment(
    r: &mut Reader<'_>,
    num_lines: usize,
) -> Result<TwoStateSegment, CodecError> {
    let compiled = read_compiled_tree(r)?;
    let n_roots = r.len(9)?;
    let mut roots = Vec::with_capacity(n_roots);
    for _ in 0..n_roots {
        let line = read_line(r, num_lines)?;
        let var = read_var(r)?;
        let source = read_root_source(r)?;
        roots.push((line, var, source));
    }
    let n_gates = r.len(8)?;
    let mut gates = Vec::with_capacity(n_gates);
    for _ in 0..n_gates {
        let line = read_line(r, num_lines)?;
        let var = read_var(r)?;
        gates.push((line, var));
    }
    Ok(TwoStateSegment {
        compiled,
        states: Mutex::new(Vec::new()),
        roots,
        gates,
    })
}

fn write_bdd_segment(w: &mut Writer, seg: &BddSegment) {
    w.usize(seg.bdd.num_vars());
    w.usize(seg.bdd.node_limit());
    let table = seg.bdd.export_table();
    w.usize(table.len());
    for [level, lo, hi] in table {
        w.u32(level);
        w.u32(lo);
        w.u32(hi);
    }
    w.usize(seg.roots.len());
    for &line in &seg.roots {
        write_line(w, line);
    }
    w.usize(seg.gates.len());
    for gate in &seg.gates {
        write_line(w, gate.line);
        w.u32(gate.p01.index() as u32);
        w.u32(gate.p10.index() as u32);
        w.u32(gate.p11.index() as u32);
    }
}

fn read_bdd_segment(r: &mut Reader<'_>, num_lines: usize) -> Result<BddSegment, CodecError> {
    let num_vars = r.usize()?;
    let node_limit = r.usize()?;
    let n_nodes = r.len(12)?;
    let mut table = Vec::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        table.push([r.u32()?, r.u32()?, r.u32()?]);
    }
    let bdd =
        Bdd::from_table(num_vars, node_limit, &table).map_err(|e| malformed(e.to_string()))?;
    let n_roots = r.len(4)?;
    let mut roots = Vec::with_capacity(n_roots);
    for _ in 0..n_roots {
        roots.push(read_line(r, num_lines)?);
    }
    let n_gates = r.len(16)?;
    let mut gates = Vec::with_capacity(n_gates);
    let node = |r: &mut Reader<'_>| -> Result<NodeId, CodecError> {
        let idx = r.u32()? as usize;
        if idx >= bdd.num_nodes() {
            return Err(malformed("gate node references a missing bdd node"));
        }
        Ok(NodeId::from_index(idx))
    };
    for _ in 0..n_gates {
        let line = read_line(r, num_lines)?;
        gates.push(GateNodes {
            line,
            p01: node(r)?,
            p10: node(r)?,
            p11: node(r)?,
        });
    }
    Ok(BddSegment { bdd, roots, gates })
}

fn write_sampling_segment(w: &mut Writer, seg: &SamplingSegment) {
    w.usize(seg.roots.len());
    for &(line, source) in &seg.roots {
        write_line(w, line);
        write_root_source(w, source);
    }
    w.usize(seg.gates.len());
    for (line, kind, inputs) in &seg.gates {
        write_line(w, *line);
        let kind_idx = GateKind::ALL
            .iter()
            .position(|k| k == kind)
            .expect("GateKind::ALL is exhaustive");
        w.u8(kind_idx as u8);
        w.usize(inputs.len());
        for &input in inputs {
            write_line(w, input);
        }
    }
    w.usize(seg.num_lines);
    w.u64(seg.stream_seed);
    w.f64_bits(seg.ci_half_width);
    w.f64_bits(seg.ci_z);
}

fn read_sampling_segment(
    r: &mut Reader<'_>,
    num_lines: usize,
) -> Result<SamplingSegment, CodecError> {
    let n_roots = r.len(5)?;
    let mut roots = Vec::with_capacity(n_roots);
    for _ in 0..n_roots {
        let line = read_line(r, num_lines)?;
        let source = read_root_source(r)?;
        roots.push((line, source));
    }
    let n_gates = r.len(6)?;
    let mut gates = Vec::with_capacity(n_gates);
    for _ in 0..n_gates {
        let line = read_line(r, num_lines)?;
        let kind_idx = r.u8()? as usize;
        let kind = *GateKind::ALL
            .get(kind_idx)
            .ok_or_else(|| malformed(format!("unknown gate kind {kind_idx}")))?;
        let n_inputs = r.len(4)?;
        let mut inputs = Vec::with_capacity(n_inputs);
        for _ in 0..n_inputs {
            inputs.push(read_line(r, num_lines)?);
        }
        gates.push((line, kind, inputs));
    }
    let seg_num_lines = r.usize()?;
    if seg_num_lines > num_lines {
        return Err(malformed("sampling segment claims more lines than circuit"));
    }
    let stream_seed = r.u64()?;
    let ci_half_width = r.f64_bits()?;
    let ci_z = r.f64_bits()?;
    Ok(SamplingSegment {
        roots,
        gates,
        num_lines: seg_num_lines,
        stream_seed,
        ci_half_width,
        ci_z,
    })
}

fn write_segment(w: &mut Writer, segment: &CompiledSegment) {
    let stats = segment.stats();
    w.f64_bits(stats.total_states);
    w.f64_bits(stats.max_clique_states);
    w.usize(stats.nnz);
    w.usize(stats.state_space);
    w.usize(stats.compressed_cliques);
    w.usize(stats.kernel_cost);
    w.bool(stats.force_ordered);
    // Stable order: HashMap iteration would make the bytes (and thus the
    // artifact checksum) nondeterministic across processes.
    let mut lines: Vec<(LineId, VarId)> = segment.lines().iter().map(|(&l, &v)| (l, v)).collect();
    lines.sort_by_key(|&(l, _)| l);
    w.usize(lines.len());
    for (line, var) in lines {
        write_line(w, line);
        write_var(w, var);
    }
    let artifact = segment.artifact();
    if let Some(seg) = artifact.downcast_ref::<JtreeSegment>() {
        w.u8(0);
        write_jtree_segment(w, seg);
    } else if let Some(seg) = artifact.downcast_ref::<TwoStateSegment>() {
        w.u8(2);
        write_twostate_segment(w, seg);
    } else if let Some(seg) = artifact.downcast_ref::<BddSegment>() {
        w.u8(1);
        write_bdd_segment(w, seg);
    } else if let Some(seg) = artifact.downcast_ref::<SamplingSegment>() {
        w.u8(3);
        write_sampling_segment(w, seg);
    } else {
        unreachable!("every built-in backend artifact is serializable");
    }
}

fn read_segment(
    r: &mut Reader<'_>,
    num_lines: usize,
    options: &Options,
) -> Result<CompiledSegment, CodecError> {
    let stats = SegmentStats {
        total_states: r.f64_bits()?,
        max_clique_states: r.f64_bits()?,
        nnz: r.usize()?,
        state_space: r.usize()?,
        compressed_cliques: r.usize()?,
        kernel_cost: r.usize()?,
        force_ordered: r.bool()?,
    };
    let n_lines = r.len(8)?;
    let mut lines = HashMap::with_capacity(n_lines);
    for _ in 0..n_lines {
        let line = read_line(r, num_lines)?;
        let var = read_var(r)?;
        lines.insert(line, var);
    }
    let artifact: Box<dyn std::any::Any + Send + Sync> = match r.u8()? {
        0 => Box::new(read_jtree_segment(r, num_lines, options)?),
        1 => Box::new(read_bdd_segment(r, num_lines)?),
        2 => Box::new(read_twostate_segment(r, num_lines)?),
        3 => Box::new(read_sampling_segment(r, num_lines)?),
        other => return Err(malformed(format!("unknown segment kind {other}"))),
    };
    Ok(CompiledSegment::new(artifact, stats, lines))
}

// ---------------------------------------------------------------------------
// The whole pipeline
// ---------------------------------------------------------------------------

/// Serializes a compiled pipeline into the artifact payload bytes. The
/// encoding is deterministic: the same pipeline produces the same bytes
/// in every process.
pub(crate) fn encode_pipeline(pipeline: &CompiledPipeline) -> Vec<u8> {
    let mut w = Writer::new();
    write_circuit(&mut w, &pipeline.planned.working);
    w.usize(pipeline.planned.line_map.len());
    for &idx in &pipeline.planned.line_map {
        w.usize(idx);
    }
    w.usize(pipeline.planned.group_signature.len());
    for group in &pipeline.planned.group_signature {
        w.usize(group.len());
        for &member in group {
            w.usize(member);
        }
    }
    w.usize(pipeline.planned.pair_signature.len());
    for &(a, b) in &pipeline.planned.pair_signature {
        w.usize(a);
        w.usize(b);
    }
    write_options(&mut w, &pipeline.options);
    w.usize(pipeline.seg_kinds.len());
    for &kind in &pipeline.seg_kinds {
        w.u8(backend_tag(kind));
    }
    w.usize(pipeline.degradations.len());
    for report in &pipeline.degradations {
        write_degradation(&mut w, report);
    }
    w.usize(pipeline.exports.len());
    for exports in &pipeline.exports {
        w.usize(exports.len());
        for export in exports {
            write_var(&mut w, export.parent_var);
            write_var(&mut w, export.child_var);
            w.usize(export.slot);
        }
    }
    w.usize(pipeline.num_slots);
    w.usize(pipeline.num_boundary_roots);
    w.usize(pipeline.schedule.waves().len());
    for wave in pipeline.schedule.waves() {
        w.usize(wave.len());
        for &seg in wave {
            w.usize(seg);
        }
    }
    // Wall-clock instrumentation (compile_time, stage/segment timings) is
    // deliberately not persisted: it varies run to run and would make the
    // bytes — and thus the artifact checksum — nondeterministic. A loaded
    // pipeline reports zero compile time, which is what actually happened.
    w.f64_bits(pipeline.total_states);
    w.f64_bits(pipeline.max_clique_states);
    w.usize(pipeline.segments.len());
    for segment in &pipeline.segments {
        write_segment(&mut w, segment);
    }
    w.into_bytes()
}

/// Reconstructs a compiled pipeline from [`encode_pipeline`] bytes.
/// Per-process state (state pools, message caches, the posterior memo) is
/// created fresh; everything the numerics read is restored bit-for-bit.
pub(crate) fn decode_pipeline(bytes: &[u8]) -> Result<CompiledPipeline, CodecError> {
    let mut r = Reader::new(bytes);
    let working = read_circuit(&mut r)?;
    let num_lines = working.num_lines();
    let num_inputs = working.num_inputs();
    let n_map = r.len(8)?;
    let mut line_map = Vec::with_capacity(n_map);
    for _ in 0..n_map {
        let idx = r.usize()?;
        if idx >= num_lines {
            return Err(malformed("line map references a missing working line"));
        }
        line_map.push(idx);
    }
    let n_groups = r.len(8)?;
    let mut group_signature = Vec::with_capacity(n_groups);
    for _ in 0..n_groups {
        let n_members = r.len(8)?;
        let mut members = Vec::with_capacity(n_members);
        for _ in 0..n_members {
            members.push(r.usize()?);
        }
        group_signature.push(members);
    }
    let n_pairs = r.len(16)?;
    let mut pair_signature = Vec::with_capacity(n_pairs);
    for _ in 0..n_pairs {
        pair_signature.push((r.usize()?, r.usize()?));
    }
    let options = read_options(&mut r)?;
    let n_kinds = r.len(1)?;
    let mut seg_kinds = Vec::with_capacity(n_kinds);
    for _ in 0..n_kinds {
        seg_kinds.push(backend_from_tag(r.u8()?)?);
    }
    let n_degradations = r.len(10)?;
    let mut degradations = Vec::with_capacity(n_degradations);
    for _ in 0..n_degradations {
        degradations.push(read_degradation(&mut r)?);
    }
    let n_exports = r.len(8)?;
    let mut exports = Vec::with_capacity(n_exports);
    for _ in 0..n_exports {
        let n = r.len(16)?;
        let mut list = Vec::with_capacity(n);
        for _ in 0..n {
            list.push(Export {
                parent_var: read_var(&mut r)?,
                child_var: read_var(&mut r)?,
                slot: r.usize()?,
            });
        }
        exports.push(list);
    }
    let num_slots = r.usize()?;
    let num_boundary_roots = r.usize()?;
    let n_waves = r.len(8)?;
    let mut waves = Vec::with_capacity(n_waves);
    for _ in 0..n_waves {
        let n = r.len(8)?;
        let mut wave = Vec::with_capacity(n);
        for _ in 0..n {
            wave.push(r.usize()?);
        }
        waves.push(wave);
    }
    let total_states = r.f64_bits()?;
    let max_clique_states = r.f64_bits()?;
    let n_segments = r.len(1)?;
    if seg_kinds.len() != n_segments || exports.len() != n_segments {
        return Err(malformed("per-segment tables disagree on segment count"));
    }
    for wave in &waves {
        if wave.iter().any(|&s| s >= n_segments) {
            return Err(malformed("schedule references a missing segment"));
        }
    }
    for report in &degradations {
        if report.segment >= n_segments {
            return Err(malformed("degradation references a missing segment"));
        }
    }
    let mut segments = Vec::with_capacity(n_segments);
    for _ in 0..n_segments {
        segments.push(read_segment(&mut r, num_lines, &options)?);
    }
    r.finish()?;

    // group_of / pair_parent_of are pure functions of the signatures.
    let mut group_of = vec![None; num_inputs];
    for (g, group) in group_signature.iter().enumerate() {
        for &member in group {
            if member >= num_inputs {
                return Err(malformed("group member out of input range"));
            }
            group_of[member] = Some(g);
        }
    }
    let mut pair_parent_of = vec![None; num_inputs];
    for &(a, b) in &pair_signature {
        if a >= num_inputs || b >= num_inputs {
            return Err(malformed("pair signature out of input range"));
        }
        pair_parent_of[b] = Some(a);
    }
    let backend_kind = options.backend;
    let memo = (0..segments.len()).map(|_| Mutex::new(None)).collect();
    Ok(CompiledPipeline {
        planned: PlannedCircuit {
            working,
            line_map,
            // The original plan is only consulted during compilation; a
            // loaded pipeline carries the final segment artifacts directly.
            plan: SegmentationPlan::empty(options.segment_budget as f64),
            group_of,
            pair_parent_of,
            group_signature,
            pair_signature,
        },
        backend_kind,
        backend: backend_impl(backend_kind),
        fallback: backend_impl(Backend::TwoState),
        sampling_fallback: backend_impl(Backend::Sampling),
        seg_kinds,
        degradations,
        segments,
        exports,
        num_slots,
        num_boundary_roots,
        schedule: WaveSchedule::from_waves(waves),
        compile_time: Duration::ZERO,
        stages: StageTimings::default(),
        seg_timings: vec![SegmentTimings::default(); n_segments],
        total_states,
        max_clique_states,
        options,
        memo,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompiledEstimator, InputSpec};
    use swact_circuit::catalog;

    fn round_trip(options: &Options) {
        let c17 = catalog::c17();
        let compiled = CompiledEstimator::compile(&c17, options).expect("compiles");
        let bytes = encode_pipeline(compiled.pipeline());
        let decoded = decode_pipeline(&bytes).expect("decodes");
        let restored = CompiledEstimator::from_pipeline(decoded);
        let spec = InputSpec::independent(vec![0.2, 0.4, 0.6, 0.8, 0.35]);
        let fresh = compiled.estimate(&spec).expect("fresh estimate");
        let warm = restored.estimate(&spec).expect("restored estimate");
        for line in c17.line_ids() {
            let a = fresh.distribution(line).as_array();
            let b = warm.distribution(line).as_array();
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.to_bits(), y.to_bits(), "line {line}");
            }
        }
    }

    #[test]
    fn pipeline_round_trips_bit_identically_per_backend() {
        for backend in [
            Backend::Jtree,
            Backend::Bdd,
            Backend::TwoState,
            Backend::Sampling,
        ] {
            round_trip(&Options {
                backend,
                ..Options::default()
            });
        }
    }

    #[test]
    fn encoding_is_deterministic() {
        let c17 = catalog::c17();
        let compiled = CompiledEstimator::compile(&c17, &Options::default()).expect("compiles");
        let a = encode_pipeline(compiled.pipeline());
        let b = encode_pipeline(compiled.pipeline());
        assert_eq!(a, b, "same pipeline must encode to the same bytes");
        let again = CompiledEstimator::compile(&c17, &Options::default()).expect("compiles");
        assert_eq!(
            a,
            encode_pipeline(again.pipeline()),
            "recompiling the same circuit must produce identical bytes"
        );
    }

    #[test]
    fn truncated_payloads_error_cleanly() {
        let c17 = catalog::c17();
        let compiled = CompiledEstimator::compile(&c17, &Options::default()).expect("compiles");
        let bytes = encode_pipeline(compiled.pipeline());
        for cut in [0, 1, bytes.len() / 3, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_pipeline(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(decode_pipeline(&trailing).is_err(), "trailing byte");
    }
}
