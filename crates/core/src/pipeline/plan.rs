//! Stage 1: fan-in decomposition and segmentation planning.

use swact_circuit::{decompose::decompose_fanin, Circuit, LineId};

use crate::estimator::Options;
use crate::segment::SegmentationPlan;
use crate::{EstimateError, InputSpec};

/// The planned circuit: the working (fan-in-decomposed) netlist, its
/// [`SegmentationPlan`], the original → working line mapping, and the
/// input-structure signature the later stages are specialized to.
///
/// This is the first typed artifact of the pipeline; it is backend-
/// independent and cheap relative to model construction and compilation.
#[derive(Debug)]
pub struct PlannedCircuit {
    pub(crate) working: Circuit,
    /// Original line index → working line index.
    pub(crate) line_map: Vec<usize>,
    pub(crate) plan: SegmentationPlan,
    /// Per primary input: spatial group it belongs to, if any.
    pub(crate) group_of: Vec<Option<usize>>,
    /// Per primary input: the input it is explicitly pair-conditioned on.
    pub(crate) pair_parent_of: Vec<Option<usize>>,
    /// Input-group membership the pipeline is compiled for.
    pub(crate) group_signature: Vec<Vec<usize>>,
    /// Pairwise-joint edges (a, b) the pipeline is compiled for.
    pub(crate) pair_signature: Vec<(usize, usize)>,
}

impl PlannedCircuit {
    /// Plans a circuit without input-structure specialization (no groups,
    /// no explicit pairwise joints).
    ///
    /// # Errors
    ///
    /// Wrapped circuit errors from fan-in decomposition.
    pub fn new(circuit: &Circuit, options: &Options) -> Result<PlannedCircuit, EstimateError> {
        PlannedCircuit::build(circuit, &[], &[], Vec::new(), Vec::new(), options)
    }

    /// Plans a circuit for a given input specification: the spec's group
    /// membership and pairwise-joint edges become part of the planned
    /// structure (later estimates may change all probabilities but must
    /// keep the same structure).
    ///
    /// # Errors
    ///
    /// Same as [`PlannedCircuit::new`].
    pub fn for_spec(
        circuit: &Circuit,
        spec: &InputSpec,
        options: &Options,
    ) -> Result<PlannedCircuit, EstimateError> {
        let mut group_of = vec![None; circuit.num_inputs()];
        for (g, group) in spec.groups().iter().enumerate() {
            for &member in &group.members {
                group_of[member] = Some(g);
            }
        }
        let mut pair_parent_of = vec![None; circuit.num_inputs()];
        for pair in spec.pairwise_joints() {
            pair_parent_of[pair.b] = Some(pair.a);
        }
        let signature = spec.groups().iter().map(|g| g.members.clone()).collect();
        let pair_signature = spec.pairwise_joints().iter().map(|p| (p.a, p.b)).collect();
        PlannedCircuit::build(
            circuit,
            &group_of,
            &pair_parent_of,
            signature,
            pair_signature,
            options,
        )
    }

    fn build(
        circuit: &Circuit,
        group_of: &[Option<usize>],
        pair_parent_of: &[Option<usize>],
        group_signature: Vec<Vec<usize>>,
        pair_signature: Vec<(usize, usize)>,
        options: &Options,
    ) -> Result<PlannedCircuit, EstimateError> {
        let working = decompose_fanin(circuit, options.max_fanin.max(2))?;
        let plan = if options.single_bn {
            // One segment regardless of strategy: with an unbounded budget
            // the balanced-cut search never trips, so TopoCover is both
            // equivalent and cheaper.
            SegmentationPlan::plan(&working, 4, usize::MAX, usize::MAX - 1, options.heuristic)
        } else {
            SegmentationPlan::plan_with(
                &working,
                4,
                options.segment_budget,
                options.check_interval,
                options.heuristic,
                options.strategy.segmentation,
            )
        };
        let line_map = (0..circuit.num_lines())
            .map(|i| {
                working
                    .find_line(circuit.line_name(LineId::from_index(i)))
                    .expect("decomposition preserves line names")
                    .index()
            })
            .collect();
        Ok(PlannedCircuit {
            working,
            line_map,
            plan,
            group_of: group_of.to_vec(),
            pair_parent_of: pair_parent_of.to_vec(),
            group_signature,
            pair_signature,
        })
    }

    /// The working (fan-in-decomposed) circuit.
    pub fn working(&self) -> &Circuit {
        &self.working
    }

    /// The segmentation plan over the working circuit.
    pub fn plan(&self) -> &SegmentationPlan {
        &self.plan
    }

    /// Number of planned segments.
    pub fn num_segments(&self) -> usize {
        self.plan.segments().len()
    }
}
