//! Stage 2: per-segment LIDAG construction.
//!
//! A [`SegmentModel`] is the backend-independent description of one
//! segment's Bayesian network: the 4-state LIDAG with CPTs (consumed by
//! the junction-tree backend), plus the raw root/gate structure other
//! backends (OBDD, two-state) compile from directly.

use std::collections::{HashMap, HashSet};

use swact_bayesnet::{BayesNet, Cpt, VarId};
use swact_circuit::{GateKind, LineId};

use crate::pipeline::plan::PlannedCircuit;
use crate::segment::{RootSource, Segment};
use crate::EstimateError;

/// A grouped primary-input root conditioned on the group member rooted
/// just before it in the same segment; the conditional comes from the
/// closed-form pair joint of the group model at estimate time.
#[derive(Debug, Clone)]
pub(crate) struct InputPair {
    pub(crate) var: VarId,
    pub(crate) parent_var: VarId,
    pub(crate) child_pos: usize,
    pub(crate) parent_pos: usize,
    /// `Some(g)` when the conditional comes from spatial group `g`'s
    /// model; `None` when it comes from the spec's explicit joint for
    /// `child_pos`.
    pub(crate) group: Option<usize>,
}

/// A boundary root whose prior is `P(line | parent line)`, restoring the
/// pairwise dependence the producing segment knew about.
#[derive(Debug, Clone)]
pub(crate) struct PairRoot {
    pub(crate) var: VarId,
    pub(crate) parent_var: VarId,
    /// Index into the estimate-time conditional store.
    pub(crate) slot: usize,
}

/// A `(parent, child)` joint the owning (producing) segment computes after
/// calibration for a later segment's [`PairRoot`].
#[derive(Debug, Clone)]
pub(crate) struct Export {
    pub(crate) parent_var: VarId,
    pub(crate) child_var: VarId,
    pub(crate) slot: usize,
}

/// One segment's Bayesian-network model: the typed artifact between
/// planning and backend compilation.
pub struct SegmentModel {
    pub(crate) index: usize,
    /// The 4-state LIDAG with placeholder root priors (uniform) and
    /// deterministic gate CPTs — what the junction-tree backend compiles.
    pub(crate) net: BayesNet,
    /// Independent roots with provenance: marginal priors.
    pub(crate) solo_roots: Vec<(LineId, VarId, RootSource)>,
    /// Correlated boundary roots (junction-tree backend only).
    pub(crate) pair_roots: Vec<PairRoot>,
    /// Primary-input roots chained to a sibling of the same spatial group
    /// or explicit pairwise joint (junction-tree backend only).
    pub(crate) input_pairs: Vec<InputPair>,
    /// Pairwise joints earlier segments must export for this segment's
    /// [`PairRoot`]s: `(producer segment, export)`.
    pub(crate) exports_by_producer: Vec<(usize, Export)>,
    /// Gate-output variables, in topological order.
    pub(crate) gates: Vec<(LineId, VarId)>,
    /// Raw gate structure (kind + input lines, duplicates preserved), in
    /// topological order — what structural backends compile from.
    pub(crate) gate_defs: Vec<(LineId, GateKind, Vec<LineId>)>,
    /// Every line with a variable in this segment (roots and gates).
    pub(crate) line_vars: HashMap<LineId, VarId>,
}

impl SegmentModel {
    /// Builds the model of segment `index` without boundary-correlation
    /// parents (plain marginal forwarding for every boundary root).
    ///
    /// # Errors
    ///
    /// Wrapped Bayesian-network construction errors.
    pub fn build(
        planned: &PlannedCircuit,
        index: usize,
        slot_base: usize,
    ) -> Result<SegmentModel, EstimateError> {
        let seg = &planned.plan.segments()[index];
        SegmentModel::build_with_parents(
            planned,
            index,
            seg,
            &HashMap::new(),
            &HashMap::new(),
            slot_base,
        )
    }

    /// Builds the model of segment `index` with the given boundary-
    /// correlation parent assignment. `pair_info` maps each paired child
    /// line to `(producer segment, parent var there, child var there)` —
    /// the joint the producer must export.
    pub(crate) fn build_with_parents(
        planned: &PlannedCircuit,
        index: usize,
        seg: &Segment,
        parent_of: &HashMap<LineId, LineId>,
        pair_info: &HashMap<LineId, (usize, VarId, VarId)>,
        slot_base: usize,
    ) -> Result<SegmentModel, EstimateError> {
        let working = &planned.working;
        let group_of = &planned.group_of;
        let pair_parent_of = &planned.pair_parent_of;
        let mut net = BayesNet::new();
        let mut solo_roots = Vec::new();
        let mut pair_roots: Vec<PairRoot> = Vec::new();
        let mut input_pairs: Vec<InputPair> = Vec::new();
        let mut exports_by_producer: Vec<(usize, Export)> = Vec::new();
        let mut var_of: HashMap<LineId, VarId> = HashMap::new();
        // Per spatial group: the member most recently rooted in this
        // segment, to chain the next member onto.
        let mut last_group_member: HashMap<usize, (VarId, usize)> = HashMap::new();
        // Reorder roots so explicit pairwise-joint parents precede their
        // children (the edges form a forest, so a DFS emit terminates).
        let root_entries: Vec<(LineId, RootSource)> = {
            let by_pos: HashMap<usize, (LineId, RootSource)> = seg
                .roots
                .iter()
                .filter_map(|&(line, source)| match source {
                    RootSource::PrimaryInput(pos) => Some((pos, (line, source))),
                    RootSource::Boundary => None,
                })
                .collect();
            let mut emitted: HashSet<LineId> = HashSet::new();
            let mut ordered = Vec::with_capacity(seg.roots.len());
            for &(line, source) in &seg.roots {
                let mut chain = vec![(line, source)];
                if let RootSource::PrimaryInput(mut pos) = source {
                    while let Some(&Some(parent_pos)) = pair_parent_of.get(pos) {
                        match by_pos.get(&parent_pos) {
                            Some(&entry) => chain.push(entry),
                            None => break,
                        }
                        pos = parent_pos;
                    }
                }
                for &entry in chain.iter().rev() {
                    if emitted.insert(entry.0) {
                        ordered.push(entry);
                    }
                }
            }
            ordered
        };
        for &(line, source) in &root_entries {
            if let Some(&parent_line) = parent_of.get(&line) {
                let parent_var = var_of[&parent_line];
                // Placeholder uniform conditional; the real
                // P(child | parent) is injected per estimate.
                let var = net.add_var(
                    working.line_name(line),
                    4,
                    &[parent_var],
                    Cpt::rows(vec![vec![0.25; 4]; 4]),
                )?;
                var_of.insert(line, var);
                let slot = slot_base + pair_roots.len();
                pair_roots.push(PairRoot {
                    var,
                    parent_var,
                    slot,
                });
                let (producer, producer_parent, producer_child) = pair_info[&line];
                exports_by_producer.push((
                    producer,
                    Export {
                        parent_var: producer_parent,
                        child_var: producer_child,
                        slot,
                    },
                ));
                continue;
            }
            // Grouped primary inputs chain onto the group member rooted
            // just before them in this segment; explicitly paired inputs
            // chain onto their conditioning input.
            if let RootSource::PrimaryInput(pos) = source {
                if let Some(&Some(parent_pos)) = pair_parent_of.get(pos) {
                    let parent_line = working.inputs()[parent_pos];
                    if let Some(&parent_var) = var_of.get(&parent_line) {
                        let var = net.add_var(
                            working.line_name(line),
                            4,
                            &[parent_var],
                            Cpt::rows(vec![vec![0.25; 4]; 4]),
                        )?;
                        var_of.insert(line, var);
                        input_pairs.push(InputPair {
                            var,
                            parent_var,
                            child_pos: pos,
                            parent_pos,
                            group: None,
                        });
                        continue;
                    }
                }
                if let Some(&Some(group)) = group_of.get(pos) {
                    if let Some(&(parent_var, parent_pos)) = last_group_member.get(&group) {
                        let var = net.add_var(
                            working.line_name(line),
                            4,
                            &[parent_var],
                            Cpt::rows(vec![vec![0.25; 4]; 4]),
                        )?;
                        var_of.insert(line, var);
                        input_pairs.push(InputPair {
                            var,
                            parent_var,
                            child_pos: pos,
                            parent_pos,
                            group: Some(group),
                        });
                        last_group_member.insert(group, (var, pos));
                        continue;
                    }
                }
            }
            // Placeholder uniform prior; weighted per estimate.
            let var = net.add_var(working.line_name(line), 4, &[], Cpt::prior(vec![0.25; 4]))?;
            var_of.insert(line, var);
            if let RootSource::PrimaryInput(pos) = source {
                if let Some(&Some(group)) = group_of.get(pos) {
                    last_group_member.insert(group, (var, pos));
                }
            }
            solo_roots.push((line, var, source));
        }
        let mut gates = Vec::with_capacity(seg.gates.len());
        let mut gate_defs = Vec::with_capacity(seg.gates.len());
        for &line in &seg.gates {
            let gate = working.gate(line).expect("planned lines are gates");
            let (unique_inputs, cpt) = crate::gate_family(gate.kind, &gate.inputs);
            let parents: Vec<VarId> = unique_inputs.iter().map(|l| var_of[l]).collect();
            let var = net.add_var(working.line_name(line), 4, &parents, cpt)?;
            var_of.insert(line, var);
            gates.push((line, var));
            gate_defs.push((line, gate.kind, gate.inputs.clone()));
        }
        Ok(SegmentModel {
            index,
            net,
            solo_roots,
            pair_roots,
            input_pairs,
            exports_by_producer,
            gates,
            gate_defs,
            line_vars: var_of,
        })
    }

    /// Index of this segment in the plan.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The segment's Bayesian network: the 4-state LIDAG with placeholder
    /// uniform root priors and deterministic gate CPTs. This is exactly
    /// what the junction-tree backend compiles, so harnesses can rebuild
    /// the same trees out-of-pipeline (the kernel microbenchmarks time
    /// calibration on these nets in isolation).
    pub fn net(&self) -> &BayesNet {
        &self.net
    }

    /// Number of root lines (primary inputs + boundary lines).
    pub fn num_roots(&self) -> usize {
        self.solo_roots.len() + self.pair_roots.len() + self.input_pairs.len()
    }

    /// Number of gate lines modeled in this segment.
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Whether the model relies on in-segment conditioning (input groups,
    /// explicit pairwise joints, or boundary-correlation parents) that
    /// only the junction-tree backend can evaluate.
    pub fn needs_pairwise(&self) -> bool {
        !self.pair_roots.is_empty() || !self.input_pairs.is_empty()
    }
}

impl std::fmt::Debug for SegmentModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentModel")
            .field("index", &self.index)
            .field("roots", &self.num_roots())
            .field("gates", &self.gates.len())
            .finish()
    }
}
