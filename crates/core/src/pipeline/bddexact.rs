//! The OBDD-exact inference backend.
//!
//! Each segment becomes one shared ROBDD over interleaved
//! `(previous, next)` variable pairs — root `j` owns BDD variables `2j`
//! and `2j+1`. Every gate line gets the conjunction nodes
//! `¬f_p ∧ f_n`, `f_p ∧ ¬f_n`, and `f_p ∧ f_n` precomputed at compile
//! time, so propagation is a read-only sweep of
//! [`Bdd::pair_probability`] calls (exact under the per-root transition
//! distributions). Within a segment this reproduces the junction-tree
//! result exactly; across segments only boundary *marginals* are
//! forwarded, because pairwise-joint export is a junction-tree notion.

use std::collections::HashMap;

use swact_bayesnet::force_order;
use swact_bdd::{apply_gate_nodes, Bdd, BddError, NodeId, PairDistribution};
use swact_circuit::LineId;

use crate::estimator::Options;
use crate::pipeline::backend::{
    CompiledSegment, InferenceBackend, RootDists, SegmentPosterior, SegmentStats,
};
use crate::pipeline::model::SegmentModel;
use crate::strategy::OrderingStrategy;
use crate::{EstimateError, TransitionDist};

/// Exact per-segment switching probabilities via shared ROBDDs.
#[derive(Debug, Clone, Copy, Default)]
pub struct BddBackend;

pub(crate) struct GateNodes {
    pub(crate) line: LineId,
    /// `¬f_prev ∧ f_next` — probability of a 0→1 transition.
    pub(crate) p01: NodeId,
    /// `f_prev ∧ ¬f_next` — probability of a 1→0 transition.
    pub(crate) p10: NodeId,
    /// `f_prev ∧ f_next` — probability of staying 1.
    pub(crate) p11: NodeId,
}

pub(crate) struct BddSegment {
    pub(crate) bdd: Bdd,
    /// Roots in BDD variable-pair order: root `j` owns vars `2j`, `2j+1`.
    pub(crate) roots: Vec<LineId>,
    pub(crate) gates: Vec<GateNodes>,
}

fn bdd_error(e: BddError) -> EstimateError {
    EstimateError::Backend {
        backend: "bdd",
        message: e.to_string(),
    }
}

impl InferenceBackend for BddBackend {
    fn name(&self) -> &'static str {
        "bdd"
    }

    fn compile(
        &self,
        model: &SegmentModel,
        options: &Options,
    ) -> Result<CompiledSegment, EstimateError> {
        if model.needs_pairwise() {
            return Err(EstimateError::BackendUnsupported {
                backend: "bdd",
                feature: "in-segment pairwise conditioning",
            });
        }
        let default_roots: Vec<LineId> = model.solo_roots.iter().map(|&(l, _, _)| l).collect();
        let segment = build_bdd(model, default_roots)?;
        // Under the FORCE strategy, also try the roots in FORCE-layout
        // order (gate families as hyperedges over segment lines) and keep
        // whichever BDD is smaller; a tie goes to the default order.
        let (segment, force_ordered) = if options.strategy.ordering == OrderingStrategy::Force {
            let candidate_roots = force_root_order(model);
            if candidate_roots == segment.roots {
                (segment, false)
            } else {
                let candidate = build_bdd(model, candidate_roots)?;
                if candidate.bdd.num_nodes() < segment.bdd.num_nodes() {
                    (candidate, true)
                } else {
                    (segment, false)
                }
            }
        } else {
            (segment, false)
        };
        let nodes = segment.bdd.num_nodes();
        let stats = SegmentStats {
            total_states: nodes as f64,
            max_clique_states: nodes as f64,
            nnz: nodes,
            state_space: nodes,
            compressed_cliques: 0,
            // One pass over the unique table per propagation.
            kernel_cost: nodes,
            force_ordered,
        };
        Ok(CompiledSegment::new(
            Box::new(segment),
            stats,
            model.line_vars.clone(),
        ))
    }

    fn propagate(
        &self,
        segment: &CompiledSegment,
        roots: &RootDists<'_>,
    ) -> Result<SegmentPosterior, EstimateError> {
        let art = segment
            .artifact()
            .downcast_ref::<BddSegment>()
            .expect("bdd backend propagates bdd artifacts");
        // The driver fills primary-input lines before the first wave and
        // boundary lines before their consumer wave, so every root's
        // transition distribution is already in the global line state.
        // `PairDistribution` uses the same `(prev, next)` joint ordering
        // as `TransitionDist::as_array` ([p00, p01, p10, p11]).
        let pairs: Vec<PairDistribution> = art
            .roots
            .iter()
            .map(|&line| PairDistribution::new(roots.dists[line.index()].as_array()))
            .collect();
        let gate_dists = art
            .gates
            .iter()
            .map(|g| {
                let p01 = art.bdd.pair_probability(g.p01, &pairs);
                let p10 = art.bdd.pair_probability(g.p10, &pairs);
                let p11 = art.bdd.pair_probability(g.p11, &pairs);
                let p00 = (1.0 - p01 - p10 - p11).max(0.0);
                (g.line, TransitionDist::new([p00, p01, p10, p11]))
            })
            .collect();
        Ok(SegmentPosterior::from_gate_dists(gate_dists))
    }
}

/// Builds the shared ROBDD for a segment with its roots in the given
/// order; root `j` owns interleaved BDD variables `2j` and `2j+1`.
fn build_bdd(model: &SegmentModel, roots: Vec<LineId>) -> Result<BddSegment, EstimateError> {
    let n = roots.len();
    let mut bdd = Bdd::new(2 * n);
    let mut prev: HashMap<LineId, NodeId> = HashMap::new();
    let mut next: HashMap<LineId, NodeId> = HashMap::new();
    for (j, &line) in roots.iter().enumerate() {
        prev.insert(line, bdd.var(2 * j).map_err(bdd_error)?);
        next.insert(line, bdd.var(2 * j + 1).map_err(bdd_error)?);
    }
    let mut gates = Vec::with_capacity(model.gate_defs.len());
    for (line, kind, inputs) in &model.gate_defs {
        let prev_inputs: Vec<NodeId> = inputs.iter().map(|l| prev[l]).collect();
        let next_inputs: Vec<NodeId> = inputs.iter().map(|l| next[l]).collect();
        let f_prev = apply_gate_nodes(&mut bdd, *kind, &prev_inputs).map_err(bdd_error)?;
        let f_next = apply_gate_nodes(&mut bdd, *kind, &next_inputs).map_err(bdd_error)?;
        prev.insert(*line, f_prev);
        next.insert(*line, f_next);
        let not_prev = bdd.not(f_prev).map_err(bdd_error)?;
        let not_next = bdd.not(f_next).map_err(bdd_error)?;
        gates.push(GateNodes {
            line: *line,
            p01: bdd.and(not_prev, f_next).map_err(bdd_error)?,
            p10: bdd.and(f_prev, not_next).map_err(bdd_error)?,
            p11: bdd.and(f_prev, f_next).map_err(bdd_error)?,
        });
    }
    Ok(BddSegment { bdd, roots, gates })
}

/// The segment's solo roots reordered by a FORCE layout of the segment's
/// line hypergraph (one hyperedge per gate: its output plus its inputs).
/// Ties in layout position keep the original root order, so the result is
/// deterministic.
fn force_root_order(model: &SegmentModel) -> Vec<LineId> {
    let mut index_of: HashMap<LineId, usize> = HashMap::new();
    let mut id_of: Vec<LineId> = Vec::new();
    let mut intern = |line: LineId, index_of: &mut HashMap<LineId, usize>| {
        *index_of.entry(line).or_insert_with(|| {
            id_of.push(line);
            id_of.len() - 1
        })
    };
    for &(line, _, _) in &model.solo_roots {
        intern(line, &mut index_of);
    }
    let mut hyperedges = Vec::with_capacity(model.gate_defs.len());
    for (line, _, inputs) in &model.gate_defs {
        let mut edge = Vec::with_capacity(inputs.len() + 1);
        edge.push(intern(*line, &mut index_of));
        for &input in inputs {
            edge.push(intern(input, &mut index_of));
        }
        hyperedges.push(edge);
    }
    let order = force_order(id_of.len(), &hyperedges);
    let mut position = vec![0usize; order.len()];
    for (pos, &node) in order.iter().enumerate() {
        position[node] = pos;
    }
    let mut roots: Vec<LineId> = model.solo_roots.iter().map(|&(l, _, _)| l).collect();
    roots.sort_by_key(|line| position[index_of[line]]);
    roots
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_name() {
        assert_eq!(BddBackend.name(), "bdd");
    }
}
