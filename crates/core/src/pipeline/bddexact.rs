//! The OBDD-exact inference backend.
//!
//! Each segment becomes one shared ROBDD over interleaved
//! `(previous, next)` variable pairs — root `j` owns BDD variables `2j`
//! and `2j+1`. Every gate line gets the conjunction nodes
//! `¬f_p ∧ f_n`, `f_p ∧ ¬f_n`, and `f_p ∧ f_n` precomputed at compile
//! time, so propagation is a read-only sweep of
//! [`Bdd::pair_probability`] calls (exact under the per-root transition
//! distributions). Within a segment this reproduces the junction-tree
//! result exactly; across segments only boundary *marginals* are
//! forwarded, because pairwise-joint export is a junction-tree notion.

use std::collections::HashMap;

use swact_bdd::{apply_gate_nodes, Bdd, BddError, NodeId, PairDistribution};
use swact_circuit::LineId;

use crate::estimator::Options;
use crate::pipeline::backend::{
    CompiledSegment, InferenceBackend, RootDists, SegmentPosterior, SegmentStats,
};
use crate::pipeline::model::SegmentModel;
use crate::{EstimateError, TransitionDist};

/// Exact per-segment switching probabilities via shared ROBDDs.
#[derive(Debug, Clone, Copy, Default)]
pub struct BddBackend;

pub(crate) struct GateNodes {
    pub(crate) line: LineId,
    /// `¬f_prev ∧ f_next` — probability of a 0→1 transition.
    pub(crate) p01: NodeId,
    /// `f_prev ∧ ¬f_next` — probability of a 1→0 transition.
    pub(crate) p10: NodeId,
    /// `f_prev ∧ f_next` — probability of staying 1.
    pub(crate) p11: NodeId,
}

pub(crate) struct BddSegment {
    pub(crate) bdd: Bdd,
    /// Roots in BDD variable-pair order: root `j` owns vars `2j`, `2j+1`.
    pub(crate) roots: Vec<LineId>,
    pub(crate) gates: Vec<GateNodes>,
}

fn bdd_error(e: BddError) -> EstimateError {
    EstimateError::Backend {
        backend: "bdd",
        message: e.to_string(),
    }
}

impl InferenceBackend for BddBackend {
    fn name(&self) -> &'static str {
        "bdd"
    }

    fn compile(
        &self,
        model: &SegmentModel,
        options: &Options,
    ) -> Result<CompiledSegment, EstimateError> {
        let _ = options;
        if model.needs_pairwise() {
            return Err(EstimateError::BackendUnsupported {
                backend: "bdd",
                feature: "in-segment pairwise conditioning",
            });
        }
        let n = model.solo_roots.len();
        let mut bdd = Bdd::new(2 * n);
        let mut prev: HashMap<LineId, NodeId> = HashMap::new();
        let mut next: HashMap<LineId, NodeId> = HashMap::new();
        let mut roots = Vec::with_capacity(n);
        for (j, &(line, _, _)) in model.solo_roots.iter().enumerate() {
            prev.insert(line, bdd.var(2 * j).map_err(bdd_error)?);
            next.insert(line, bdd.var(2 * j + 1).map_err(bdd_error)?);
            roots.push(line);
        }
        let mut gates = Vec::with_capacity(model.gate_defs.len());
        for (line, kind, inputs) in &model.gate_defs {
            let prev_inputs: Vec<NodeId> = inputs.iter().map(|l| prev[l]).collect();
            let next_inputs: Vec<NodeId> = inputs.iter().map(|l| next[l]).collect();
            let f_prev = apply_gate_nodes(&mut bdd, *kind, &prev_inputs).map_err(bdd_error)?;
            let f_next = apply_gate_nodes(&mut bdd, *kind, &next_inputs).map_err(bdd_error)?;
            prev.insert(*line, f_prev);
            next.insert(*line, f_next);
            let not_prev = bdd.not(f_prev).map_err(bdd_error)?;
            let not_next = bdd.not(f_next).map_err(bdd_error)?;
            gates.push(GateNodes {
                line: *line,
                p01: bdd.and(not_prev, f_next).map_err(bdd_error)?,
                p10: bdd.and(f_prev, not_next).map_err(bdd_error)?,
                p11: bdd.and(f_prev, f_next).map_err(bdd_error)?,
            });
        }
        let nodes = bdd.num_nodes();
        let stats = SegmentStats {
            total_states: nodes as f64,
            max_clique_states: nodes as f64,
            nnz: nodes,
            state_space: nodes,
            compressed_cliques: 0,
            // One pass over the unique table per propagation.
            kernel_cost: nodes,
        };
        Ok(CompiledSegment::new(
            Box::new(BddSegment { bdd, roots, gates }),
            stats,
            model.line_vars.clone(),
        ))
    }

    fn propagate(
        &self,
        segment: &CompiledSegment,
        roots: &RootDists<'_>,
    ) -> Result<SegmentPosterior, EstimateError> {
        let art = segment
            .artifact()
            .downcast_ref::<BddSegment>()
            .expect("bdd backend propagates bdd artifacts");
        // The driver fills primary-input lines before the first wave and
        // boundary lines before their consumer wave, so every root's
        // transition distribution is already in the global line state.
        // `PairDistribution` uses the same `(prev, next)` joint ordering
        // as `TransitionDist::as_array` ([p00, p01, p10, p11]).
        let pairs: Vec<PairDistribution> = art
            .roots
            .iter()
            .map(|&line| PairDistribution::new(roots.dists[line.index()].as_array()))
            .collect();
        let gate_dists = art
            .gates
            .iter()
            .map(|g| {
                let p01 = art.bdd.pair_probability(g.p01, &pairs);
                let p10 = art.bdd.pair_probability(g.p10, &pairs);
                let p11 = art.bdd.pair_probability(g.p11, &pairs);
                let p00 = (1.0 - p01 - p10 - p11).max(0.0);
                (g.line, TransitionDist::new([p00, p01, p10, p11]))
            })
            .collect();
        Ok(SegmentPosterior::from_gate_dists(gate_dists))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_name() {
        assert_eq!(BddBackend.name(), "bdd");
    }
}
