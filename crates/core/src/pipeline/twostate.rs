//! The two-state (signal-probability) inference backend — the classic
//! pre-LIDAG formulation as a pluggable ablation.
//!
//! Each segment becomes a 2-state Bayesian network over signal
//! probabilities (`P(line = 1)`); switching activity is then approximated
//! by the temporal-independence proxy `2·p·(1−p)` encoded as the
//! stationary product distribution `[q², q·p, p·q, p²]`. Exact for
//! temporally independent inputs; blind to temporal correlation and to
//! whatever spatial correlation segmentation drops (see
//! [`crate::twostate`] for the standalone estimator and the error
//! analysis).

use std::sync::Mutex;

use swact_bayesnet::{
    initial_potentials, BayesNet, CompiledTree, Cpt, JunctionTree, PropagationState, VarId,
};
use swact_circuit::LineId;

use crate::estimator::Options;
use crate::pipeline::backend::{
    CompiledSegment, InferenceBackend, RootDists, SegmentPosterior, SegmentStats,
};
use crate::pipeline::model::SegmentModel;
use crate::segment::RootSource;
use crate::twostate::gate_family_two_state;
use crate::{EstimateError, TransitionDist};

/// Signal-probability propagation with the `2p(1−p)` switching proxy.
#[derive(Debug, Clone, Copy, Default)]
pub struct TwoStateBackend;

pub(crate) struct TwoStateSegment {
    pub(crate) compiled: CompiledTree,
    pub(crate) states: Mutex<Vec<PropagationState>>,
    pub(crate) roots: Vec<(LineId, VarId, RootSource)>,
    pub(crate) gates: Vec<(LineId, VarId)>,
}

impl InferenceBackend for TwoStateBackend {
    fn name(&self) -> &'static str {
        "twostate"
    }

    fn compile(
        &self,
        model: &SegmentModel,
        options: &Options,
    ) -> Result<CompiledSegment, EstimateError> {
        if model.needs_pairwise() {
            return Err(EstimateError::BackendUnsupported {
                backend: "twostate",
                feature: "in-segment pairwise conditioning",
            });
        }
        let mut net = BayesNet::new();
        let mut var_of: std::collections::HashMap<LineId, VarId> = std::collections::HashMap::new();
        let mut roots = Vec::with_capacity(model.solo_roots.len());
        for &(line, _, source) in &model.solo_roots {
            // Placeholder uniform prior; the real P(line = 1) is injected
            // per estimate as a likelihood weight.
            let var = net.add_var(
                format!("l{}", line.index()),
                2,
                &[],
                Cpt::prior(vec![0.5, 0.5]),
            )?;
            var_of.insert(line, var);
            roots.push((line, var, source));
        }
        let mut gates = Vec::with_capacity(model.gate_defs.len());
        for (line, kind, inputs) in &model.gate_defs {
            let (unique_inputs, cpt) = gate_family_two_state(*kind, inputs);
            let parents: Vec<VarId> = unique_inputs.iter().map(|l| var_of[l]).collect();
            let var = net.add_var(format!("l{}", line.index()), 2, &parents, cpt)?;
            var_of.insert(*line, var);
            gates.push((*line, var));
        }
        let tree = JunctionTree::compile_with(&net, options.heuristic)?;
        if options.single_bn && tree.total_states() > options.segment_budget as f64 {
            return Err(EstimateError::TooLarge {
                states: tree.total_states(),
                budget: options.segment_budget as f64,
            });
        }
        let potentials = initial_potentials(&tree, &net);
        let total_states = tree.total_states();
        let max_clique_states = tree.max_clique_states();
        let compiled = CompiledTree::from_parts_with(tree, potentials, options.sparse);
        let stats = SegmentStats {
            total_states,
            max_clique_states,
            nnz: compiled.nnz(),
            state_space: compiled.state_space(),
            compressed_cliques: compiled.compressed_cliques(),
            kernel_cost: compiled.kernel_cost(),
            force_ordered: false,
        };
        Ok(CompiledSegment::new(
            Box::new(TwoStateSegment {
                compiled,
                states: Mutex::new(Vec::new()),
                roots,
                gates,
            }),
            stats,
            model.line_vars.clone(),
        ))
    }

    fn propagate(
        &self,
        segment: &CompiledSegment,
        roots: &RootDists<'_>,
    ) -> Result<SegmentPosterior, EstimateError> {
        let art = segment
            .artifact()
            .downcast_ref::<TwoStateSegment>()
            .expect("twostate backend propagates twostate artifacts");
        let compiled = &art.compiled;
        let mut state = {
            let mut pool = art.states.lock().expect("state pool lock");
            pool.pop()
        }
        .unwrap_or_else(|| compiled.new_state());
        state.clear_evidence();
        for &(line, var, source) in &art.roots {
            // Primary inputs keep their exact marginal; boundary lines use
            // the forwarded distribution's next-state marginal (for
            // two-state posteriors that IS the signal probability).
            let p = match source {
                RootSource::PrimaryInput(pos) => roots.spec.model(pos).p1(),
                RootSource::Boundary => roots.dists[line.index()].p_one_next(),
            };
            compiled.set_likelihood(&mut state, var, vec![2.0 * (1.0 - p), 2.0 * p])?;
        }
        compiled.calibrate(&mut state);
        let gate_dists = art
            .gates
            .iter()
            .map(|&(line, var)| {
                let p = compiled.marginal(&state, var)[1];
                let q = 1.0 - p;
                // Temporal-independence proxy: stationary product joint,
                // whose switching mass is 2·p·(1−p).
                (line, TransitionDist::new([q * q, q * p, p * q, p * p]))
            })
            .collect();
        art.states.lock().expect("state pool lock").push(state);
        Ok(SegmentPosterior::from_gate_dists(gate_dists))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_name() {
        assert_eq!(TwoStateBackend.name(), "twostate");
    }
}
