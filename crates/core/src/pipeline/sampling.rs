//! The anytime sampling inference backend — the degradation ladder's
//! quantified middle rung.
//!
//! Each segment is evaluated by forward sampling its 4-state LIDAG:
//! every sample draws a (previous, next) transition for each root from
//! its exact prior (spec distribution for primary inputs, forwarded
//! boundary marginal for boundary lines) and pushes both bit planes
//! through the segment's deterministic gates. With evidence only at the
//! roots, likelihood weighting degenerates to plain forward sampling —
//! every sample carries weight 1 — so the per-line histograms are
//! unbiased estimates of the exact posterior transition distributions.
//!
//! The loop is **anytime and budget-aware**: batches run until the
//! Burch/Najm normal-approximation confidence interval on the segment's
//! mean gate switching activity is within
//! [`Options::ci_half_width`](crate::Options::ci_half_width) (the same
//! [`StoppingRule`] the Monte-Carlo simulator uses), the remaining
//! propagate-stage deadline is spent, or the internal batch cap is hit —
//! whichever comes first — and the best estimate so far is returned with
//! an [`AccuracyReport`] attached to the posterior.
//!
//! Determinism: every segment samples from its own splitmix64 stream
//! whose seed is a pure function of [`Options::seed`](crate::Options)
//! and the segment's content (computed at compile time and persisted in
//! the artifact), so results are bit-identical across job counts and
//! warm/cold artifact loads whenever the stop is convergence- or
//! cap-driven. Deadline stops are inherently timing-dependent — that is
//! the anytime trade-off, and `converged: false` in the report flags it.

use std::time::Instant;

use swact_circuit::{GateKind, LineId};
use swact_sim::StoppingRule;

use crate::estimator::Options;
use crate::faults;
use crate::pipeline::backend::{
    CompiledSegment, InferenceBackend, RootDists, SegmentPosterior, SegmentStats,
};
use crate::pipeline::model::SegmentModel;
use crate::report::AccuracyReport;
use crate::segment::RootSource;
use crate::{EstimateError, TransitionDist};

/// Samples drawn per batch; batch means feed the stopping rule.
pub(crate) const SAMPLES_PER_BATCH: usize = 512;
/// Hard cap on batches per segment, so unconverged segments terminate.
pub(crate) const MAX_BATCHES: usize = 256;

/// Anytime forward sampling over the 4-state LIDAG with a deterministic
/// seeded stream and per-segment confidence intervals.
#[derive(Debug, Clone, Copy, Default)]
pub struct SamplingBackend;

pub(crate) struct SamplingSegment {
    /// Roots in model order: line and where its prior comes from.
    pub(crate) roots: Vec<(LineId, RootSource)>,
    /// Gates in topological order: output line, kind, input lines
    /// (duplicates preserved — `GateKind::eval` handles them).
    pub(crate) gates: Vec<(LineId, GateKind, Vec<LineId>)>,
    /// Scratch-buffer size: max line index touched, plus one.
    pub(crate) num_lines: usize,
    /// Per-segment sampling stream seed, derived from `Options::seed`
    /// and the segment content at compile time (persisted, so warm
    /// loads replay the identical stream).
    pub(crate) stream_seed: u64,
    /// Absolute confidence half-width target on mean gate switching.
    pub(crate) ci_half_width: f64,
    /// z-score of the confidence level.
    pub(crate) ci_z: f64,
}

/// The splitmix64 generator: tiny, fast, and fully deterministic — the
/// sampler's only randomness source, so `swact` needs no RNG dependency.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` from the top 53 bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a over a stream of words — the segment-content hash the stream
/// seed is derived from.
fn fnv1a(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for w in words {
        for byte in w.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Derives the per-segment stream seed from the base seed and the
/// segment's structural content (roots and gate wiring). Content-keyed,
/// not index-keyed, so replanning unrelated segments never perturbs this
/// segment's stream.
fn stream_seed(options_seed: u64, model: &SegmentModel) -> u64 {
    let mut words: Vec<u64> = vec![options_seed];
    for (line, _, source) in &model.solo_roots {
        words.push(line.index() as u64);
        words.push(match source {
            RootSource::PrimaryInput(pos) => 1 + *pos as u64,
            RootSource::Boundary => 0,
        });
    }
    for (line, kind, inputs) in &model.gate_defs {
        words.push(line.index() as u64);
        words.push(gate_kind_tag(*kind));
        for input in inputs {
            words.push(input.index() as u64);
        }
    }
    fnv1a(words)
}

/// Stable numeric tag per gate kind for hashing (independent of enum
/// layout or `Debug` formatting).
fn gate_kind_tag(kind: GateKind) -> u64 {
    match kind {
        GateKind::And => 0,
        GateKind::Nand => 1,
        GateKind::Or => 2,
        GateKind::Nor => 3,
        GateKind::Xor => 4,
        GateKind::Xnor => 5,
        GateKind::Not => 6,
        GateKind::Buf => 7,
        GateKind::Const0 => 8,
        GateKind::Const1 => 9,
    }
}

/// Draws a transition index from a 4-state distribution by CDF walk.
fn draw(dist: &[f64; 4], u: f64) -> usize {
    let mut acc = 0.0;
    for (k, &p) in dist.iter().enumerate().take(3) {
        acc += p;
        if u < acc {
            return k;
        }
    }
    3
}

impl InferenceBackend for SamplingBackend {
    fn name(&self) -> &'static str {
        "sampling"
    }

    fn compile(
        &self,
        model: &SegmentModel,
        options: &Options,
    ) -> Result<CompiledSegment, EstimateError> {
        if model.needs_pairwise() {
            return Err(EstimateError::BackendUnsupported {
                backend: "sampling",
                feature: "in-segment pairwise conditioning",
            });
        }
        let roots: Vec<(LineId, RootSource)> = model
            .solo_roots
            .iter()
            .map(|&(line, _, source)| (line, source))
            .collect();
        let gates = model.gate_defs.clone();
        let num_lines = roots
            .iter()
            .map(|(l, _)| l.index())
            .chain(gates.iter().map(|(l, _, _)| l.index()))
            .chain(
                gates
                    .iter()
                    .flat_map(|(_, _, inputs)| inputs.iter().map(|l| l.index())),
            )
            .max()
            .map_or(0, |m| m + 1);
        let n_vars = (roots.len() + gates.len()) as f64;
        let stats = SegmentStats {
            // Backend-native units: 4-state variables sampled per pass.
            total_states: 4.0 * n_vars,
            max_clique_states: 4.0,
            nnz: 0,
            state_space: 0,
            compressed_cliques: 0,
            // One sweep evaluates every gate once per sample.
            kernel_cost: gates.len() * SAMPLES_PER_BATCH,
            force_ordered: false,
        };
        Ok(CompiledSegment::new(
            Box::new(SamplingSegment {
                stream_seed: stream_seed(options.seed, model),
                roots,
                gates,
                num_lines,
                ci_half_width: options.ci_half_width,
                ci_z: options.ci_z,
            }),
            stats,
            model.line_vars.clone(),
        ))
    }

    fn propagate(
        &self,
        segment: &CompiledSegment,
        roots: &RootDists<'_>,
    ) -> Result<SegmentPosterior, EstimateError> {
        let art = segment
            .artifact()
            .downcast_ref::<SamplingSegment>()
            .expect("sampling backend propagates sampling artifacts");
        let n_gates = art.gates.len();
        if n_gates == 0 {
            return Ok(SegmentPosterior {
                accuracy: Some(AccuracyReport {
                    half_width: 0.0,
                    z: art.ci_z,
                    samples: 0,
                    converged: true,
                }),
                ..SegmentPosterior::default()
            });
        }
        // Resolve each root's 4-state prior once per propagation.
        let root_dists: Vec<(LineId, [f64; 4])> = art
            .roots
            .iter()
            .map(|&(line, source)| {
                let dist = match source {
                    RootSource::PrimaryInput(pos) => {
                        let row = roots.spec.prior_row(pos);
                        [row[0], row[1], row[2], row[3]]
                    }
                    RootSource::Boundary => roots.dists[line.index()].as_array(),
                };
                (line, dist)
            })
            .collect();

        let mut prev = vec![false; art.num_lines];
        let mut next = vec![false; art.num_lines];
        let mut counts: Vec<[u64; 4]> = vec![[0; 4]; n_gates];
        let mut rule = StoppingRule::new(art.ci_z);
        let deadline = roots.deadline();
        let mut converged = false;
        for batch in 0..MAX_BATCHES {
            // Anytime stop: once the remaining propagate-stage deadline
            // is spent, return the best estimate so far. Checked before
            // each batch, so the loop overshoots by at most one batch —
            // and always runs the first, so there is always an estimate.
            if batch > 0 {
                if let Some(deadline) = deadline {
                    if Instant::now() >= deadline {
                        break;
                    }
                }
            }
            faults::hit("pipeline:sample:batch", Some(batch));
            let mut rng = SplitMix64::new(
                art.stream_seed
                    .wrapping_add((batch as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            );
            let mut batch_switches = 0u64;
            for _ in 0..SAMPLES_PER_BATCH {
                for (line, dist) in &root_dists {
                    let k = draw(dist, rng.next_f64());
                    prev[line.index()] = k >> 1 == 1;
                    next[line.index()] = k & 1 == 1;
                }
                for (g, (line, kind, inputs)) in art.gates.iter().enumerate() {
                    let p = kind.eval(inputs.iter().map(|l| prev[l.index()]));
                    let n = kind.eval(inputs.iter().map(|l| next[l.index()]));
                    prev[line.index()] = p;
                    next[line.index()] = n;
                    let k = (p as usize) << 1 | n as usize;
                    counts[g][k] += 1;
                    batch_switches += u64::from(p != n);
                }
            }
            rule.push(batch_switches as f64 / (SAMPLES_PER_BATCH * n_gates) as f64);
            if rule.within_absolute(art.ci_half_width) {
                converged = true;
                break;
            }
        }
        let total = (rule.len() * SAMPLES_PER_BATCH) as f64;
        let gate_dists: Vec<(LineId, TransitionDist)> = art
            .gates
            .iter()
            .zip(&counts)
            .map(|(&(line, _, _), c)| {
                (
                    line,
                    TransitionDist::new([
                        c[0] as f64 / total,
                        c[1] as f64 / total,
                        c[2] as f64 / total,
                        c[3] as f64 / total,
                    ]),
                )
            })
            .collect();
        let mut posterior = SegmentPosterior::from_gate_dists(gate_dists);
        posterior.accuracy = Some(AccuracyReport {
            half_width: rule.half_width(),
            z: art.ci_z,
            samples: rule.len() as u64 * SAMPLES_PER_BATCH as u64,
            converged,
        });
        Ok(posterior)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_name() {
        assert_eq!(SamplingBackend.name(), "sampling");
    }

    #[test]
    fn splitmix_is_deterministic_and_uniformish() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let x = a.next_f64();
            assert_eq!(x.to_bits(), b.next_f64().to_bits());
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 1000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn draw_walks_the_cdf() {
        let d = [0.25, 0.25, 0.25, 0.25];
        assert_eq!(draw(&d, 0.0), 0);
        assert_eq!(draw(&d, 0.3), 1);
        assert_eq!(draw(&d, 0.6), 2);
        assert_eq!(draw(&d, 0.99), 3);
        // Degenerate distributions always land on the support.
        assert_eq!(draw(&[0.0, 0.0, 0.0, 1.0], 0.5), 3);
        assert_eq!(draw(&[1.0, 0.0, 0.0, 0.0], 0.5), 0);
    }

    #[test]
    fn stream_seed_is_content_sensitive() {
        // Different base seeds give different streams for the same words.
        assert_ne!(fnv1a([1, 2, 3]), fnv1a([1, 2, 4]));
        assert_ne!(fnv1a([0]), fnv1a([1]));
    }
}
