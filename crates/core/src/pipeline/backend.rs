//! The pluggable inference-backend abstraction.
//!
//! A backend turns one [`SegmentModel`] into an opaque propagation artifact
//! ([`CompiledSegment`]) and later evaluates that artifact against concrete
//! root statistics ([`RootDists`]), producing the segment's posterior line
//! distributions ([`SegmentPosterior`]). The pipeline driver owns
//! everything else — planning, wave scheduling, boundary forwarding — so a
//! backend only ever sees one segment at a time.

use std::any::Any;
use std::collections::HashMap;
use std::str::FromStr;

use swact_bayesnet::VarId;
use swact_circuit::LineId;

use crate::estimator::Options;
use crate::pipeline::model::{Export, SegmentModel};
use crate::report::AccuracyReport;
use crate::{EstimateError, InputSpec, TransitionDist};

/// Which inference engine evaluates each segment's Bayesian network.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Exact junction-tree (HUGIN) propagation over the 4-state LIDAG —
    /// the paper's method and the default. Supports input groups,
    /// explicit pairwise joints, and boundary-correlation forwarding.
    #[default]
    Jtree,
    /// Exact switching probabilities from per-segment OBDDs over
    /// interleaved (previous, next) input variables. Within a segment the
    /// result is exact; across segments only boundary *marginals* are
    /// forwarded (boundary-correlation export is a junction-tree notion).
    Bdd,
    /// Anytime forward sampling over the 4-state LIDAG with a
    /// deterministic seeded stream and the Burch/Najm stopping rule:
    /// batches run until the confidence half-width target
    /// ([`Options::ci_half_width`](crate::Options::ci_half_width)) is met
    /// or the remaining deadline is spent, and every posterior carries an
    /// [`AccuracyReport`]. The degradation ladder's middle rung.
    Sampling,
    /// The classic two-state ablation: signal probabilities only, with
    /// switching approximated as `2·p·(1−p)`. Exact for temporally
    /// independent inputs, blind to temporal correlation.
    TwoState,
}

impl Backend {
    /// Stable lower-case name (`jtree`, `bdd`, `sampling`, `twostate`).
    pub fn name(&self) -> &'static str {
        match self {
            Backend::Jtree => "jtree",
            Backend::Bdd => "bdd",
            Backend::Sampling => "sampling",
            Backend::TwoState => "twostate",
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Backend, String> {
        match s.to_ascii_lowercase().as_str() {
            "jtree" | "junction-tree" | "hugin" => Ok(Backend::Jtree),
            "bdd" | "obdd" => Ok(Backend::Bdd),
            "sampling" | "sample" | "anytime" => Ok(Backend::Sampling),
            "twostate" | "two-state" | "2state" => Ok(Backend::TwoState),
            other => Err(format!(
                "unknown backend '{other}' (expected jtree, bdd, sampling, or twostate)"
            )),
        }
    }
}

/// Size statistics of one compiled segment, in backend-native units
/// (junction-tree states and nonzeros for `jtree`, BDD nodes for `bdd`,
/// 2-state tree sizes for `twostate`).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SegmentStats {
    /// Total state count of the propagation artifact.
    pub total_states: f64,
    /// Largest single-clique (or equivalent) state count.
    pub max_clique_states: f64,
    /// Nonzero potential entries the hot path actually touches.
    pub nnz: usize,
    /// Dense state-space size `nnz` is measured against.
    pub state_space: usize,
    /// Number of cliques stored in zero-compressed form.
    pub compressed_cliques: usize,
    /// Cost-model estimate of one propagation sweep, in weighted table
    /// loads (see `CompiledTree::kernel_cost`): the deterministic quantity
    /// `SparseMode::Auto` minimizes per clique, so auto's total never
    /// exceeds dense's.
    pub kernel_cost: usize,
    /// Whether this segment was compiled from a FORCE-searched order that
    /// beat the greedy one (always `false` under
    /// [`OrderingStrategy::Greedy`](crate::OrderingStrategy::Greedy)).
    pub force_ordered: bool,
}

/// One segment compiled by an [`InferenceBackend`]: the backend's opaque
/// propagation artifact plus the driver-facing metadata every backend must
/// provide (size stats and the line → variable map used for joint routing
/// and boundary-correlation parent search).
pub struct CompiledSegment {
    artifact: Box<dyn Any + Send + Sync>,
    stats: SegmentStats,
    lines: HashMap<LineId, VarId>,
}

impl CompiledSegment {
    /// Wraps a backend artifact with its stats; `lines` maps every line
    /// that has a variable in this segment (roots and gates).
    pub fn new(
        artifact: Box<dyn Any + Send + Sync>,
        stats: SegmentStats,
        lines: HashMap<LineId, VarId>,
    ) -> CompiledSegment {
        CompiledSegment {
            artifact,
            stats,
            lines,
        }
    }

    /// The backend-specific artifact, for downcasting inside the backend.
    pub fn artifact(&self) -> &(dyn Any + Send + Sync) {
        &*self.artifact
    }

    /// Size statistics of this segment.
    pub fn stats(&self) -> &SegmentStats {
        &self.stats
    }

    /// Line → variable map over this segment's roots and gates.
    pub fn lines(&self) -> &HashMap<LineId, VarId> {
        &self.lines
    }
}

impl std::fmt::Debug for CompiledSegment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledSegment")
            .field("stats", &self.stats)
            .field("lines", &self.lines.len())
            .finish()
    }
}

/// Everything one propagation of a segment reads: the input spec, the
/// global per-line distributions produced by earlier waves, forwarded
/// boundary conditionals, the pairwise joints this segment must export,
/// and any requested in-segment line-pair joints.
pub struct RootDists<'a> {
    pub(crate) spec: &'a InputSpec,
    pub(crate) dists: &'a [TransitionDist],
    pub(crate) conditionals: &'a [Option<[f64; 16]>],
    pub(crate) exports: &'a [Export],
    pub(crate) joint_requests: &'a [(VarId, VarId, usize)],
    /// Absolute instant the propagate stage's deadline elapses, when a
    /// [`Budget::deadline`](crate::Budget) is set. Anytime backends stop
    /// drawing work when it passes; exact backends ignore it (the driver
    /// enforces it cooperatively at wave boundaries).
    pub(crate) deadline: Option<std::time::Instant>,
}

impl<'a> RootDists<'a> {
    /// The input specification being propagated.
    pub fn spec(&self) -> &'a InputSpec {
        self.spec
    }

    /// The transition distribution of a boundary line produced by an
    /// earlier wave (placeholder for lines not yet computed).
    pub fn boundary(&self, line: LineId) -> &TransitionDist {
        &self.dists[line.index()]
    }

    /// Absolute instant the propagate stage's deadline elapses, if any.
    pub fn deadline(&self) -> Option<std::time::Instant> {
        self.deadline
    }
}

/// Everything one segment's propagation produces, merged into the global
/// state after the segment (or its whole wave) finishes.
///
/// `Clone` so the pipeline's boundary-marginal memoization can serve a
/// stored posterior verbatim when a segment's inputs are unchanged.
#[derive(Debug, Default, Clone)]
pub struct SegmentPosterior {
    /// Posterior transition distribution per gate line of the segment.
    pub(crate) gate_dists: Vec<(LineId, TransitionDist)>,
    /// `(slot, P(child|parent))` conditionals exported for later segments.
    pub(crate) exports: Vec<(usize, [f64; 16])>,
    /// `(request index, 4×4 joint)` answers to in-segment joint requests.
    pub(crate) joints: Vec<(usize, [[f64; 4]; 4])>,
    /// Collect messages served from the backend's message cache.
    pub(crate) messages_reused: u64,
    /// Collect messages recomputed (zero when the whole segment was
    /// served from the posterior memo).
    pub(crate) messages_recomputed: u64,
    /// Confidence-interval report for approximate (sampled) posteriors;
    /// `None` for exact backends.
    pub(crate) accuracy: Option<AccuracyReport>,
}

impl SegmentPosterior {
    /// A posterior carrying only per-line distributions (no exports or
    /// joints) — what backends without pairwise-joint support return.
    pub fn from_gate_dists(gate_dists: Vec<(LineId, TransitionDist)>) -> SegmentPosterior {
        SegmentPosterior {
            gate_dists,
            ..SegmentPosterior::default()
        }
    }

    /// The per-gate-line posterior distributions.
    pub fn gate_dists(&self) -> &[(LineId, TransitionDist)] {
        &self.gate_dists
    }
}

/// A pluggable inference engine: compiles one [`SegmentModel`] into a
/// [`CompiledSegment`] and later propagates concrete root statistics
/// through it. Implementations must be thread-safe — segments of one wave
/// propagate concurrently, each against `&self`.
pub trait InferenceBackend: Send + Sync {
    /// Stable backend name (matches [`Backend::name`] for built-ins).
    fn name(&self) -> &'static str;

    /// Compiles a segment model into this backend's propagation artifact.
    ///
    /// # Errors
    ///
    /// [`EstimateError::BackendUnsupported`] when the model uses a feature
    /// the backend cannot express (input groups, pairwise joints),
    /// [`EstimateError::TooLarge`] / [`EstimateError::Backend`] when the
    /// artifact exceeds its size budget, and
    /// [`EstimateError::CorrelationBlowup`] — an internal signal the
    /// pipeline driver answers by retrying the segment with plain marginal
    /// forwarding.
    fn compile(
        &self,
        model: &SegmentModel,
        options: &Options,
    ) -> Result<CompiledSegment, EstimateError>;

    /// Propagates root statistics through a compiled segment.
    ///
    /// # Errors
    ///
    /// Backend-specific propagation failures, wrapped in
    /// [`EstimateError`].
    fn propagate(
        &self,
        segment: &CompiledSegment,
        roots: &RootDists<'_>,
    ) -> Result<SegmentPosterior, EstimateError>;

    /// A bit-exact (`f64::to_bits`) fingerprint of everything `propagate`
    /// would read from `roots` for this segment: solo-root priors,
    /// input-pair conditionals, forwarded boundary conditionals, and the
    /// joint requests routed here. Two calls with equal signatures are
    /// guaranteed to produce bit-identical posteriors, so the pipeline may
    /// serve a memoized [`SegmentPosterior`] instead of re-propagating.
    /// `None` (the default) disables memoization for this backend.
    fn root_signature(&self, segment: &CompiledSegment, roots: &RootDists<'_>) -> Option<u128> {
        let _ = (segment, roots);
        None
    }

    /// Structural distance between two lines inside a compiled segment,
    /// used to pick boundary-correlation parents; `None` disables
    /// correlation forwarding from this segment (the default — only
    /// backends that can export exact pairwise joints override it).
    fn correlation_distance(
        &self,
        segment: &CompiledSegment,
        child: LineId,
        candidate: LineId,
    ) -> Option<usize> {
        let _ = (segment, child, candidate);
        None
    }
}

/// The built-in backend implementation for a [`Backend`] selector.
pub(crate) fn backend_impl(backend: Backend) -> Box<dyn InferenceBackend> {
    match backend {
        Backend::Jtree => Box::new(crate::pipeline::jtree::JtreeBackend),
        Backend::Bdd => Box::new(crate::pipeline::bddexact::BddBackend),
        Backend::Sampling => Box::new(crate::pipeline::sampling::SamplingBackend),
        Backend::TwoState => Box::new(crate::pipeline::twostate::TwoStateBackend),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_parses_and_prints() {
        assert_eq!("jtree".parse::<Backend>().unwrap(), Backend::Jtree);
        assert_eq!("BDD".parse::<Backend>().unwrap(), Backend::Bdd);
        assert_eq!("two-state".parse::<Backend>().unwrap(), Backend::TwoState);
        assert_eq!("sampling".parse::<Backend>().unwrap(), Backend::Sampling);
        assert_eq!("anytime".parse::<Backend>().unwrap(), Backend::Sampling);
        assert!("gibbs".parse::<Backend>().is_err());
        assert_eq!(Backend::default(), Backend::Jtree);
        assert_eq!(Backend::Bdd.to_string(), "bdd");
        assert_eq!(Backend::Sampling.to_string(), "sampling");
    }
}
