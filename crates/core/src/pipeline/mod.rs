//! The staged estimation pipeline.
//!
//! The paper's workflow is an explicit pipeline; this module makes each
//! stage a typed artifact with a pluggable inference engine between the
//! last two:
//!
//! 1. **Plan** ([`PlannedCircuit`]) — fan-in decomposition and
//!    segmentation planning over the working circuit.
//! 2. **Model** ([`SegmentModel`]) — per-segment LIDAG/CPT construction,
//!    including boundary-correlation parent selection.
//! 3. **Compile** ([`CompiledSegment`]) — an [`InferenceBackend`] turns
//!    each model into its propagation artifact (junction tree, OBDDs, or
//!    a two-state network).
//! 4. **Schedule** ([`WaveSchedule`]) — segments are grouped into
//!    dependency waves for topologically ordered propagation.
//! 5. **Propagate + forward** — per estimate, the backend propagates each
//!    wave and the driver forwards boundary marginals (and, for the
//!    junction-tree backend, pairwise joints) to later segments.
//!
//! [`StageTimings`] instruments every stage; the facade in
//! [`crate::CompiledEstimator`] wraps the whole pipeline behind the
//! original API.

pub mod backend;
mod bddexact;
mod jtree;
mod model;
pub(crate) mod persist;
mod plan;
mod schedule;
mod timing;

pub use backend::{
    Backend, CompiledSegment, InferenceBackend, RootDists, SegmentPosterior, SegmentStats,
};
pub use model::SegmentModel;
pub use plan::PlannedCircuit;
pub use schedule::WaveSchedule;
pub use timing::{SegmentTimings, StageTimings};

mod sampling;
mod twostate;

use std::collections::HashMap;
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

use swact_bayesnet::VarId;
use swact_circuit::{Circuit, LineId};

use crate::budget::{DegradationCause, DegradationReport, Fallback};
use crate::estimator::Options;
use crate::faults;
use crate::pipeline::backend::backend_impl;
use crate::pipeline::model::Export;
use crate::report::{AccuracyReport, Estimate};
use crate::segment::{estimate_segment_cost, replan_segment, RootSource, Segment};
use crate::{EstimateError, InputSpec, TransitionDist};

/// The compiled pipeline: planned circuit, per-segment backend artifacts,
/// export routing, and the wave schedule. The public face of this type is
/// [`crate::CompiledEstimator`].
pub(crate) struct CompiledPipeline {
    planned: PlannedCircuit,
    backend_kind: Backend,
    backend: Box<dyn InferenceBackend>,
    /// Rung-2 fallback engine for segments degraded to
    /// [`Backend::Sampling`] — anytime forward sampling with reported
    /// confidence intervals.
    sampling_fallback: Box<dyn InferenceBackend>,
    /// Last-rung fallback engine for segments degraded to
    /// [`Backend::TwoState`] (reached only when the sampler cannot model
    /// the segment).
    fallback: Box<dyn InferenceBackend>,
    /// Which engine compiled each segment (the primary `backend_kind`, or
    /// [`Backend::Sampling`] / [`Backend::TwoState`] after degradation).
    seg_kinds: Vec<Backend>,
    /// Compile-time budget-ladder provenance, per degraded segment.
    degradations: Vec<DegradationReport>,
    segments: Vec<CompiledSegment>,
    /// Per segment: pairwise joints it must export after calibration
    /// (requested by later consumer segments at compile time).
    exports: Vec<Vec<Export>>,
    /// Number of cross-segment conditional slots.
    num_slots: usize,
    num_boundary_roots: usize,
    schedule: WaveSchedule,
    compile_time: Duration,
    /// Compile-side stage breakdown (propagate/forward stay zero here).
    stages: StageTimings,
    /// Per-segment model/compile times (propagate filled per estimate).
    seg_timings: Vec<SegmentTimings>,
    total_states: f64,
    max_clique_states: f64,
    options: Options,
    /// Per-segment boundary-marginal memo: the last propagated posterior
    /// keyed by the backend's root signature. A segment whose incoming
    /// priors, boundary marginals, and forwarded conditionals are all
    /// bit-unchanged since the previous estimate is served from here
    /// without re-propagating. Only primary-backend segments participate
    /// (degraded segments never memoize — see `propagate_segment`).
    memo: Vec<Mutex<Option<(u128, SegmentPosterior)>>>,
}

impl CompiledPipeline {
    pub(crate) fn compile(
        circuit: &Circuit,
        spec: Option<&InputSpec>,
        options: &Options,
    ) -> Result<CompiledPipeline, EstimateError> {
        let start = Instant::now();
        let backend_kind = options.backend;
        let backend = backend_impl(backend_kind);
        let planned = match spec {
            Some(spec) => PlannedCircuit::for_spec(circuit, spec, options)?,
            None => PlannedCircuit::new(circuit, options)?,
        };
        if backend_kind != Backend::Jtree
            && (!planned.group_signature.is_empty() || !planned.pair_signature.is_empty())
        {
            return Err(EstimateError::BackendUnsupported {
                backend: backend_kind.name(),
                feature: "input groups / explicit pairwise joints",
            });
        }
        let plan_time = start.elapsed();
        faults::hit("pipeline:plan", None);

        let budget = options.budget;
        let sampling_fallback = backend_impl(Backend::Sampling);
        let fallback = backend_impl(Backend::TwoState);
        // Space budgets are hard admission checks on the planner's *soft*
        // target: the estimate is re-derived per segment and violations
        // walk the degradation ladder below instead of allocating an
        // exponential potential.
        let checks_space = budget.max_states.is_some() || budget.max_factor_bytes.is_some();
        let space_violation = |est: f64, resident: usize| -> Option<DegradationCause> {
            if let Some(max_states) = budget.max_states {
                if est > max_states {
                    return Some(DegradationCause::StateBudget {
                        estimated: est,
                        budget: max_states,
                    });
                }
            }
            if let Some(max_bytes) = budget.max_factor_bytes {
                let projected = resident.saturating_add((est * 8.0) as usize);
                if projected > max_bytes {
                    return Some(DegradationCause::FactorBytes {
                        bytes: projected,
                        budget: max_bytes,
                    });
                }
            }
            None
        };

        let mut final_segments: Vec<Segment> = Vec::with_capacity(planned.num_segments());
        let mut seg_kinds: Vec<Backend> = Vec::with_capacity(planned.num_segments());
        let mut degradations: Vec<DegradationReport> = Vec::new();
        let mut segments: Vec<CompiledSegment> = Vec::with_capacity(planned.num_segments());
        let mut exports: Vec<Vec<Export>> = Vec::with_capacity(planned.num_segments());
        let mut seg_timings: Vec<SegmentTimings> = Vec::with_capacity(planned.num_segments());
        let mut total_states = 0.0;
        let mut max_clique_states = 0.0f64;
        let mut num_slots = 0usize;
        let mut num_boundary_roots = 0usize;
        let mut model_time = Duration::ZERO;
        let mut compile_stage_time = Duration::ZERO;
        // Resident compiled-potential bytes so far (8 per stored entry).
        let mut resident_bytes = 0usize;
        // Where each gate line was produced: (segment index, var there).
        let mut produced_in: HashMap<LineId, (usize, VarId)> = HashMap::new();
        for (plan_idx, planned_seg) in planned.plan.segments().iter().enumerate() {
            // With the sampling backend primary, compilation allocates no
            // potentials and the deadline instead caps the anytime sampler
            // at propagate time — expiry here must not abort the run.
            if let Some(deadline) = budget
                .deadline
                .filter(|_| options.backend != Backend::Sampling)
            {
                if start.elapsed() > deadline {
                    return Err(EstimateError::DeadlineExceeded {
                        stage: "compile",
                        deadline,
                    });
                }
            }
            // Admission + degradation ladder: decide which pieces this
            // planned segment becomes and which engine runs each piece.
            let pressure = faults::budget_pressure("pipeline:admission", Some(plan_idx));
            let mut admitted: Vec<(Segment, Backend)> = Vec::new();
            if checks_space || pressure {
                let est =
                    estimate_segment_cost(&planned.working, 4, planned_seg, options.heuristic);
                let cause = if pressure {
                    // Synthetic exhaustion from the fault harness: treat
                    // the segment as over the state budget.
                    Some(DegradationCause::StateBudget {
                        estimated: est,
                        budget: budget.max_states.unwrap_or(planned.plan.budget()),
                    })
                } else {
                    space_violation(est, resident_bytes)
                };
                match cause {
                    None => admitted.push((planned_seg.clone(), backend_kind)),
                    Some(cause) => {
                        if options.no_fallback || options.single_bn {
                            return Err(EstimateError::BudgetExceeded {
                                segment: final_segments.len(),
                                states: est,
                                budget: match cause {
                                    DegradationCause::StateBudget { budget, .. } => budget,
                                    DegradationCause::FactorBytes { budget, .. } => budget as f64,
                                },
                                rung: backend_kind.name(),
                            });
                        }
                        // Rung 1: replan just this segment under a tighter
                        // state target so it splits into sub-segments.
                        let target = match cause {
                            DegradationCause::StateBudget { estimated, budget } => {
                                budget.min(estimated)
                            }
                            DegradationCause::FactorBytes { budget, .. } => {
                                (budget.saturating_sub(resident_bytes) / 8).max(1) as f64
                            }
                        };
                        let tighter = (target / 4.0).max(16.0);
                        let subs = replan_segment(
                            &planned.working,
                            4,
                            planned_seg,
                            tighter,
                            1,
                            options.heuristic,
                        );
                        let could_split = subs.len() > 1;
                        if could_split {
                            degradations.push(DegradationReport {
                                segment: final_segments.len(),
                                cause,
                                fallback: Fallback::Replanned {
                                    subsegments: subs.len(),
                                },
                            });
                        }
                        // Projected resident bytes across the sub-segments
                        // not yet compiled (actuals land after compile).
                        let mut sub_resident = resident_bytes;
                        for sub in subs {
                            let sub_cause = if !could_split {
                                // Unsplittable (single-family) segment:
                                // the replan rung cannot help.
                                Some(cause)
                            } else if pressure {
                                None
                            } else {
                                let sub_est = estimate_segment_cost(
                                    &planned.working,
                                    4,
                                    &sub,
                                    options.heuristic,
                                );
                                sub_resident =
                                    sub_resident.saturating_add((sub_est * 8.0) as usize);
                                space_violation(sub_est, sub_resident)
                            };
                            match sub_cause {
                                None => admitted.push((sub, backend_kind)),
                                Some(sub_cause) => {
                                    // Rung 2: evaluate this piece with the
                                    // anytime sampling engine — linear cost
                                    // per sample, full 4-state model, and a
                                    // reported confidence interval. (When
                                    // the primary backend is already the
                                    // cheaper twostate there is nothing to
                                    // gain; keep it.) Rung 3 — twostate —
                                    // is reached below only if the sampler
                                    // cannot model this piece.
                                    let rung = if backend_kind == Backend::TwoState {
                                        Backend::TwoState
                                    } else {
                                        Backend::Sampling
                                    };
                                    degradations.push(DegradationReport {
                                        segment: final_segments.len() + admitted.len(),
                                        cause: sub_cause,
                                        fallback: if rung == Backend::TwoState {
                                            Fallback::TwoState
                                        } else {
                                            Fallback::Sampling
                                        },
                                    });
                                    admitted.push((sub, rung));
                                }
                            }
                        }
                    }
                }
            } else {
                admitted.push((planned_seg.clone(), backend_kind));
            }

            for (seg, mut kind) in admitted {
                let seg_idx = final_segments.len();
                exports.push(Vec::new());
                let model_start = Instant::now();
                // Assign boundary-correlation parents: a boundary root may be
                // conditioned on an earlier boundary root of this segment when
                // both were produced in the same earlier segment and share a
                // clique there (so that segment can export their exact joint).
                let mut parent_of: HashMap<LineId, LineId> = HashMap::new();
                // Per paired child line: (producer segment, parent var there,
                // child var there) — the joint the producer must export.
                let mut pair_info: HashMap<LineId, (usize, VarId, VarId)> = HashMap::new();
                // Degraded (twostate) segments cannot consume pair roots, so
                // they always use plain marginal forwarding.
                if options.boundary_correlation && kind == backend_kind {
                    // Each correlated boundary root is conditioned on ONE
                    // earlier root of this segment — the structurally closest
                    // line (smallest clique distance) that also has a variable
                    // in the producing segment. Primary inputs qualify too:
                    // a boundary line is often most correlated with the very
                    // inputs it computes, and those reappear here as roots.
                    // Parents must themselves be plain roots (no chains) and
                    // serve at most two children, so the extra edges stay
                    // tree-ish and cannot explode the consumer's width.
                    let mut children_of: HashMap<LineId, usize> = HashMap::new();
                    let mut earlier: Vec<LineId> = Vec::new();
                    for &(line, source) in &seg.roots {
                        if source == RootSource::Boundary {
                            let (producer, child_var) = produced_in[&line];
                            let producer_seg = &segments[producer];
                            let mut best: Option<(usize, LineId)> = None;
                            for &candidate in &earlier {
                                if parent_of.contains_key(&candidate)
                                    || children_of.get(&candidate).copied().unwrap_or(0) >= 2
                                {
                                    continue;
                                }
                                if let Some(d) =
                                    backend.correlation_distance(producer_seg, line, candidate)
                                {
                                    if best.is_none_or(|(bd, _)| d < bd) {
                                        best = Some((d, candidate));
                                    }
                                }
                            }
                            if let Some((_, parent)) = best {
                                parent_of.insert(line, parent);
                                *children_of.entry(parent).or_default() += 1;
                                pair_info.insert(
                                    line,
                                    (producer, producer_seg.lines()[&parent], child_var),
                                );
                            }
                        }
                        earlier.push(line);
                    }
                }

                let mut model = SegmentModel::build_with_parents(
                    &planned, seg_idx, &seg, &parent_of, &pair_info, num_slots,
                )?;
                let seg_model_time = model_start.elapsed();
                faults::hit("pipeline:compile", Some(seg_idx));
                let compile_start = Instant::now();
                let engine: &dyn InferenceBackend = if kind == backend_kind {
                    &*backend
                } else if kind == Backend::Sampling {
                    &*sampling_fallback
                } else {
                    &*fallback
                };
                let compiled = match engine.compile(&model, options) {
                    // Boundary-correlation edges widened this segment's tree
                    // past the tolerated blowup: retry with plain marginal
                    // forwarding for this segment.
                    Err(EstimateError::CorrelationBlowup { .. }) => {
                        model = SegmentModel::build_with_parents(
                            &planned,
                            seg_idx,
                            &seg,
                            &HashMap::new(),
                            &HashMap::new(),
                            num_slots,
                        )?;
                        engine.compile(&model, options)?
                    }
                    // Rung 3: the sampler cannot model this degraded piece
                    // (in-segment pairwise conditioning) — drop to the
                    // twostate engine. That rung is itself exponential in
                    // the 2-state tree, so admission-check its own cost
                    // first and attribute any exhaustion to the rung that
                    // actually ran out (not the primary backend's numbers).
                    Err(EstimateError::BackendUnsupported { .. })
                        if kind == Backend::Sampling && backend_kind != Backend::Sampling =>
                    {
                        let two_est =
                            estimate_segment_cost(&planned.working, 2, &seg, options.heuristic);
                        if let Some(cause) = space_violation(two_est, resident_bytes) {
                            return Err(EstimateError::BudgetExceeded {
                                segment: seg_idx,
                                states: two_est,
                                budget: match cause {
                                    DegradationCause::StateBudget { budget, .. } => budget,
                                    DegradationCause::FactorBytes { budget, .. } => budget as f64,
                                },
                                rung: "twostate",
                            });
                        }
                        kind = Backend::TwoState;
                        for report in degradations.iter_mut() {
                            if report.segment == seg_idx && report.fallback == Fallback::Sampling {
                                report.fallback = Fallback::TwoState;
                            }
                        }
                        fallback.compile(&model, options)?
                    }
                    other => other?,
                };
                let seg_compile_time = compile_start.elapsed();
                model_time += seg_model_time;
                compile_stage_time += seg_compile_time;
                seg_timings.push(SegmentTimings {
                    model: seg_model_time,
                    compile: seg_compile_time,
                    propagate: Duration::ZERO,
                });
                num_slots += model.pair_roots.len();
                num_boundary_roots += model.pair_roots.len()
                    + model
                        .solo_roots
                        .iter()
                        .filter(|(_, _, src)| *src == RootSource::Boundary)
                        .count();
                for &(line, var) in &model.gates {
                    produced_in.insert(line, (seg_idx, var));
                }
                total_states += compiled.stats().total_states;
                max_clique_states = max_clique_states.max(compiled.stats().max_clique_states);
                resident_bytes = resident_bytes.saturating_add(compiled.stats().nnz * 8);
                for (producer, export) in model.exports_by_producer {
                    exports[producer].push(export);
                }
                segments.push(compiled);
                final_segments.push(seg);
                seg_kinds.push(kind);
            }
        }
        let schedule = WaveSchedule::from_segments(&final_segments);
        let memo = (0..segments.len()).map(|_| Mutex::new(None)).collect();
        Ok(CompiledPipeline {
            planned,
            backend_kind,
            backend,
            sampling_fallback,
            fallback,
            seg_kinds,
            degradations,
            segments,
            exports,
            num_slots,
            num_boundary_roots,
            schedule,
            compile_time: start.elapsed(),
            stages: StageTimings {
                plan: plan_time,
                model: model_time,
                compile: compile_stage_time,
                ..StageTimings::default()
            },
            seg_timings,
            total_states,
            max_clique_states,
            options: *options,
            memo,
        })
    }

    /// Propagates one segment, consulting the posterior memo first: when
    /// incremental mode is on and the backend reports a root signature
    /// equal to the stored one, the memoized posterior is cloned instead
    /// of re-propagated (bit-identical by the
    /// [`InferenceBackend::root_signature`] contract). Returns the
    /// posterior and whether it was served from the memo. Degraded
    /// segments run on the fallback engine and never participate, so a
    /// budget-governed run can never serve a posterior cached under
    /// different governance.
    fn propagate_segment(
        &self,
        seg_idx: usize,
        roots: &RootDists<'_>,
    ) -> Result<(SegmentPosterior, bool), EstimateError> {
        let engine = self.backend_for(seg_idx);
        let signature = if self.options.incremental && self.seg_kinds[seg_idx] == self.backend_kind
        {
            engine.root_signature(&self.segments[seg_idx], roots)
        } else {
            None
        };
        if let Some(sig) = signature {
            let slot = self.memo[seg_idx]
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if let Some((stored_sig, posterior)) = slot.as_ref() {
                if *stored_sig == sig {
                    return Ok((posterior.clone(), true));
                }
            }
        }
        let output = engine.propagate(&self.segments[seg_idx], roots)?;
        if let Some(sig) = signature {
            // The stored copy zeroes the message counters: a memo hit did
            // no message work, so a served posterior must not re-report
            // the original run's counts.
            let mut stored = output.clone();
            stored.messages_reused = 0;
            stored.messages_recomputed = 0;
            *self.memo[seg_idx]
                .lock()
                .unwrap_or_else(PoisonError::into_inner) = Some((sig, stored));
        }
        Ok((output, false))
    }

    #[allow(clippy::type_complexity)]
    pub(crate) fn estimate_with_line_joints(
        &self,
        spec: &InputSpec,
        line_pairs: &[(LineId, LineId)],
    ) -> Result<(Estimate, Vec<Option<[[f64; 4]; 4]>>), EstimateError> {
        let working = &self.planned.working;
        if spec.len() != working.num_inputs() {
            return Err(EstimateError::InputCountMismatch {
                circuit: working.num_inputs(),
                spec: spec.len(),
            });
        }
        let spec_signature: Vec<Vec<usize>> =
            spec.groups().iter().map(|g| g.members.clone()).collect();
        if spec_signature != self.planned.group_signature {
            return Err(EstimateError::GroupStructureMismatch);
        }
        let spec_pairs: Vec<(usize, usize)> =
            spec.pairwise_joints().iter().map(|p| (p.a, p.b)).collect();
        if spec_pairs != self.planned.pair_signature {
            return Err(EstimateError::GroupStructureMismatch);
        }
        let start = Instant::now();
        let placeholder = TransitionDist::new([1.0, 0.0, 0.0, 0.0]);
        let mut dists: Vec<TransitionDist> = vec![placeholder; working.num_lines()];
        let mut known = vec![false; working.num_lines()];
        // Primary inputs take their (group-adjusted) spec distribution.
        for (i, &pi) in working.inputs().iter().enumerate() {
            dists[pi.index()] = spec.effective_distribution(i);
            known[pi.index()] = true;
        }
        // Cross-segment conditionals, filled by producers before consumers
        // run (segments are in topological order). Each entry holds
        // `P(child = c | parent = p)` flattened as `p·4 + c`.
        let mut conditionals: Vec<Option<[f64; 16]>> = vec![None; self.num_slots];
        // Requested line-pair joints: (segment, var_a, var_b, request idx).
        let mut joint_requests: Vec<Vec<(VarId, VarId, usize)>> =
            vec![Vec::new(); self.segments.len()];
        let mut joints: Vec<Option<[[f64; 4]; 4]>> = vec![None; line_pairs.len()];
        for (idx, &(a, b)) in line_pairs.iter().enumerate() {
            let wa = LineId::from_index(self.planned.line_map[a.index()]);
            let wb = LineId::from_index(self.planned.line_map[b.index()]);
            if let Some(seg_idx) = self
                .segments
                .iter()
                .position(|seg| seg.lines().contains_key(&wa) && seg.lines().contains_key(&wb))
            {
                let seg = &self.segments[seg_idx];
                joint_requests[seg_idx].push((seg.lines()[&wa], seg.lines()[&wb], idx));
            }
        }
        let mut propagate_wall = Duration::ZERO;
        let mut seg_propagate: Vec<Duration> = vec![Duration::ZERO; self.segments.len()];
        let mut messages_reused = 0u64;
        let mut messages_recomputed = 0u64;
        let mut segments_skipped = 0u64;
        let mut accuracy: Option<AccuracyReport> = None;
        // Absolute instant the propagate-stage deadline elapses; anytime
        // (sampling) segments stop drawing batches once it passes.
        let sample_deadline = self.options.budget.deadline.map(|d| start + d);
        for (wave_idx, wave) in self.schedule.waves().iter().enumerate() {
            faults::hit("pipeline:propagate:wave", Some(wave_idx));
            // Cooperative per-stage deadline: checked at wave boundaries,
            // so numerics are never altered by time pressure — a run that
            // completes is bit-identical to an undeadlined run. Models with
            // anytime (sampling) segments trade this hard abort for graceful
            // degradation: the sampler absorbs the time pressure by capping
            // its batches at `sample_deadline`, and the run always returns a
            // best-effort estimate whose accuracy report says how far it got.
            if let Some(deadline) = self
                .options
                .budget
                .deadline
                .filter(|_| self.sampled_segments() == 0)
            {
                if start.elapsed() > deadline {
                    return Err(EstimateError::DeadlineExceeded {
                        stage: "propagate",
                        deadline,
                    });
                }
            }
            let wave_start = Instant::now();
            if wave.len() == 1 {
                let seg_idx = wave[0];
                let (output, skipped) = self.propagate_segment(
                    seg_idx,
                    &RootDists {
                        spec,
                        dists: &dists,
                        conditionals: &conditionals,
                        exports: &self.exports[seg_idx],
                        joint_requests: &joint_requests[seg_idx],
                        deadline: sample_deadline,
                    },
                )?;
                let elapsed = wave_start.elapsed();
                seg_propagate[seg_idx] = elapsed;
                propagate_wall += elapsed;
                messages_reused += output.messages_reused;
                messages_recomputed += output.messages_recomputed;
                segments_skipped += u64::from(skipped);
                merge_accuracy(&mut accuracy, output.accuracy.as_ref());
                apply_segment_output(
                    output,
                    &mut dists,
                    &mut known,
                    &mut conditionals,
                    &mut joints,
                );
                continue;
            }
            // Independent segments (no boundary lines between them)
            // propagate concurrently — the paper's §5 observation that
            // junction-tree messages on disjoint branches are independent,
            // lifted to segment granularity.
            let exports = &self.exports;
            let dists_ref = &dists;
            let conditionals_ref = &conditionals;
            let joint_requests_ref = &joint_requests;
            #[allow(clippy::type_complexity)]
            let outputs: Vec<(
                usize,
                Duration,
                Result<(SegmentPosterior, bool), EstimateError>,
            )> = std::thread::scope(|scope| {
                let handles: Vec<_> = wave
                    .iter()
                    .map(|&seg_idx| {
                        scope.spawn(move || {
                            let seg_start = Instant::now();
                            let result = self.propagate_segment(
                                seg_idx,
                                &RootDists {
                                    spec,
                                    dists: dists_ref,
                                    conditionals: conditionals_ref,
                                    exports: &exports[seg_idx],
                                    joint_requests: &joint_requests_ref[seg_idx],
                                    deadline: sample_deadline,
                                },
                            );
                            (seg_idx, seg_start.elapsed(), result)
                        })
                    })
                    .collect();
                // A panicked segment worker becomes this segment's
                // error instead of poisoning the whole estimate.
                handles
                    .into_iter()
                    .zip(wave.iter())
                    .map(|(h, &seg_idx)| match h.join() {
                        Ok(out) => out,
                        Err(payload) => (
                            seg_idx,
                            Duration::ZERO,
                            Err(EstimateError::from_panic(payload.as_ref())),
                        ),
                    })
                    .collect()
            });
            propagate_wall += wave_start.elapsed();
            for (seg_idx, elapsed, output) in outputs {
                seg_propagate[seg_idx] = elapsed;
                let (output, skipped) = output?;
                messages_reused += output.messages_reused;
                messages_recomputed += output.messages_recomputed;
                segments_skipped += u64::from(skipped);
                merge_accuracy(&mut accuracy, output.accuracy.as_ref());
                apply_segment_output(
                    output,
                    &mut dists,
                    &mut known,
                    &mut conditionals,
                    &mut joints,
                );
            }
        }
        let propagate_time = start.elapsed();
        debug_assert!(known.iter().all(|&k| k), "every line estimated");
        let mut stages = self.stages;
        stages.propagate = propagate_wall;
        stages.forward = propagate_time.saturating_sub(propagate_wall);
        let mut per_segment = self.seg_timings.clone();
        for (timing, elapsed) in per_segment.iter_mut().zip(&seg_propagate) {
            timing.propagate = *elapsed;
        }
        let estimate = Estimate::new(
            dists,
            self.planned.line_map.clone(),
            self.compile_time,
            propagate_time,
            self.segments.len(),
            self.total_states,
            self.max_clique_states,
            stages,
            per_segment,
            self.degradations.clone(),
            crate::report::ReuseStats {
                messages_reused,
                messages_recomputed,
                segments_skipped,
            },
            accuracy,
        );
        Ok((estimate, joints))
    }

    /// The engine that compiled (and therefore propagates) segment
    /// `seg_idx` — the primary backend, or the sampling/twostate fallback
    /// after degradation.
    fn backend_for(&self, seg_idx: usize) -> &dyn InferenceBackend {
        let kind = self.seg_kinds[seg_idx];
        if kind == self.backend_kind {
            &*self.backend
        } else if kind == Backend::Sampling {
            &*self.sampling_fallback
        } else {
            &*self.fallback
        }
    }

    /// Number of segments evaluated by the sampling engine (primary or
    /// via the degradation ladder).
    pub(crate) fn sampled_segments(&self) -> usize {
        self.seg_kinds
            .iter()
            .filter(|&&k| k == Backend::Sampling)
            .count()
    }

    pub(crate) fn degradations(&self) -> &[DegradationReport] {
        &self.degradations
    }

    pub(crate) fn working_circuit(&self) -> &Circuit {
        &self.planned.working
    }

    pub(crate) fn num_segments(&self) -> usize {
        self.segments.len()
    }

    pub(crate) fn compile_time(&self) -> Duration {
        self.compile_time
    }

    pub(crate) fn total_states(&self) -> f64 {
        self.total_states
    }

    pub(crate) fn max_clique_states(&self) -> f64 {
        self.max_clique_states
    }

    pub(crate) fn nnz(&self) -> usize {
        self.segments.iter().map(|s| s.stats().nnz).sum()
    }

    pub(crate) fn zero_fraction(&self) -> f64 {
        let states: usize = self.segments.iter().map(|s| s.stats().state_space).sum();
        if states == 0 {
            return 0.0;
        }
        1.0 - self.nnz() as f64 / states as f64
    }

    pub(crate) fn compressed_cliques(&self) -> usize {
        self.segments
            .iter()
            .map(|s| s.stats().compressed_cliques)
            .sum()
    }

    pub(crate) fn kernel_cost(&self) -> usize {
        self.segments.iter().map(|s| s.stats().kernel_cost).sum()
    }

    pub(crate) fn force_ordered_segments(&self) -> usize {
        self.segments
            .iter()
            .filter(|s| s.stats().force_ordered)
            .count()
    }

    pub(crate) fn options(&self) -> &Options {
        &self.options
    }

    pub(crate) fn backend(&self) -> Backend {
        self.backend_kind
    }

    pub(crate) fn stage_timings(&self) -> StageTimings {
        self.stages
    }

    pub(crate) fn segment_timings(&self) -> &[SegmentTimings] {
        &self.seg_timings
    }

    pub(crate) fn num_correlated_boundaries(&self) -> usize {
        self.num_slots
    }

    pub(crate) fn num_waves(&self) -> usize {
        self.schedule.num_waves()
    }

    pub(crate) fn num_boundary_roots(&self) -> usize {
        self.num_boundary_roots
    }
}

/// Folds one segment's accuracy report into the estimate-level aggregate
/// (weakest half-width, summed samples, conjunctive convergence).
fn merge_accuracy(aggregate: &mut Option<AccuracyReport>, report: Option<&AccuracyReport>) {
    if let Some(report) = report {
        match aggregate {
            None => *aggregate = Some(*report),
            Some(agg) => agg.merge(report),
        }
    }
}

fn apply_segment_output(
    output: SegmentPosterior,
    dists: &mut [TransitionDist],
    known: &mut [bool],
    conditionals: &mut [Option<[f64; 16]>],
    joints: &mut [Option<[[f64; 4]; 4]>],
) {
    for (line, dist) in output.gate_dists {
        dists[line.index()] = dist;
        known[line.index()] = true;
    }
    for (slot, cond) in output.exports {
        conditionals[slot] = Some(cond);
    }
    for (idx, joint) in output.joints {
        joints[idx] = Some(joint);
    }
}
