//! Per-stage wall-clock instrumentation threaded through the pipeline.

use std::ops::AddAssign;
use std::time::Duration;

/// Wall-clock time spent in each pipeline stage.
///
/// Compile-side stages (`plan`, `model`, `compile`) are recorded once per
/// [`CompiledEstimator`](crate::CompiledEstimator); propagation-side stages
/// (`propagate`, `forward`) are recorded per estimate. When several
/// segments of one wave propagate on separate threads, `propagate` is the
/// wall time of the whole wave, not the sum over its threads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Fan-in decomposition, segmentation planning, and line mapping.
    pub plan: Duration,
    /// Per-segment LIDAG/CPT construction (including boundary-correlation
    /// parent selection).
    pub model: Duration,
    /// Backend compilation of every segment model into its propagation
    /// artifact (junction tree + potentials, OBDDs, …).
    pub compile: Duration,
    /// Evidence injection, calibration, and marginal readout across all
    /// dependency waves.
    pub propagate: Duration,
    /// Boundary forwarding: root preparation, joint routing, and merging
    /// segment posteriors into the global line state.
    pub forward: Duration,
}

impl StageTimings {
    /// Sum of all five stages.
    pub fn total(&self) -> Duration {
        self.plan + self.model + self.compile + self.propagate + self.forward
    }

    /// Compile-side subtotal (`plan + model + compile`).
    pub fn compile_side(&self) -> Duration {
        self.plan + self.model + self.compile
    }
}

impl AddAssign for StageTimings {
    fn add_assign(&mut self, rhs: StageTimings) {
        self.plan += rhs.plan;
        self.model += rhs.model;
        self.compile += rhs.compile;
        self.propagate += rhs.propagate;
        self.forward += rhs.forward;
    }
}

/// Per-segment stage breakdown: how long one segment's Bayesian network
/// took to model, compile, and (in the most recent estimate) propagate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SegmentTimings {
    /// LIDAG/CPT construction for this segment.
    pub model: Duration,
    /// Backend compilation of this segment.
    pub compile: Duration,
    /// Evidence injection + calibration + readout for this segment.
    pub propagate: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let mut t = StageTimings {
            plan: Duration::from_millis(1),
            model: Duration::from_millis(2),
            compile: Duration::from_millis(3),
            propagate: Duration::from_millis(4),
            forward: Duration::from_millis(5),
        };
        assert_eq!(t.total(), Duration::from_millis(15));
        assert_eq!(t.compile_side(), Duration::from_millis(6));
        t += t;
        assert_eq!(t.total(), Duration::from_millis(30));
    }
}
