//! Bit-identity regression: the default jtree backend must reproduce the
//! pre-pipeline-refactor estimates exactly (`f64::to_bits` equality).
//!
//! The golden fingerprints below were captured from the monolithic
//! `estimator.rs` immediately before it was split into `pipeline/`
//! modules: FNV-1a 64 over the little-endian `to_bits()` bytes of all
//! four transition-distribution entries of every line, in
//! `circuit.line_ids()` order, under a uniform spec and default options.
//! Any change to floating-point evaluation order in the jtree path shows
//! up here as a hash mismatch.

use swact::{estimate, InputSpec, Options};
use swact_circuit::catalog;

fn fnv1a(bytes: impl Iterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn fingerprint(name: &str) -> (usize, u64, u64) {
    let circuit = catalog::benchmark(name).unwrap();
    let spec = InputSpec::uniform(circuit.num_inputs());
    let est = estimate(&circuit, &spec, &Options::default()).unwrap();
    let mut bytes = Vec::new();
    for line in circuit.line_ids() {
        for p in est.distribution(line).as_array() {
            bytes.extend_from_slice(&p.to_bits().to_le_bytes());
        }
    }
    (
        est.num_segments(),
        fnv1a(bytes.into_iter()),
        est.mean_switching().to_bits(),
    )
}

#[test]
fn jtree_backend_is_bit_identical_to_pre_refactor_on_c17() {
    assert_eq!(
        fingerprint("c17"),
        (1, 0x0820f9a42e22330d, 0x3fde1745d1745d17)
    );
}

#[test]
fn jtree_backend_is_bit_identical_to_pre_refactor_on_c432() {
    assert_eq!(
        fingerprint("c432"),
        (4, 0x1c5e3e532e60b850, 0x3fd85a8073860d61)
    );
}

#[test]
fn jtree_backend_is_bit_identical_to_pre_refactor_on_alu2() {
    assert_eq!(
        fingerprint("alu2"),
        (4, 0x6e9823d657c42a74, 0x3fd67a8890c91701)
    );
}
