//! Bit-identity regression: the default jtree backend must reproduce the
//! pre-pipeline-refactor estimates exactly (`f64::to_bits` equality).
//!
//! The golden fingerprints below were captured from the monolithic
//! `estimator.rs` immediately before it was split into `pipeline/`
//! modules: FNV-1a 64 over the little-endian `to_bits()` bytes of all
//! four transition-distribution entries of every line, in
//! `circuit.line_ids()` order, under a uniform spec and default options.
//! Any change to floating-point evaluation order in the jtree path shows
//! up here as a hash mismatch.

use swact::{estimate, CompiledEstimator, InputSpec, Options, SparseMode};
use swact_circuit::catalog;

fn fnv1a(bytes: impl Iterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn fingerprint(name: &str) -> (usize, u64, u64) {
    let circuit = catalog::benchmark(name).unwrap();
    let spec = InputSpec::uniform(circuit.num_inputs());
    let est = estimate(&circuit, &spec, &Options::default()).unwrap();
    let mut bytes = Vec::new();
    for line in circuit.line_ids() {
        for p in est.distribution(line).as_array() {
            bytes.extend_from_slice(&p.to_bits().to_le_bytes());
        }
    }
    (
        est.num_segments(),
        fnv1a(bytes.into_iter()),
        est.mean_switching().to_bits(),
    )
}

#[test]
fn jtree_backend_is_bit_identical_to_pre_refactor_on_c17() {
    assert_eq!(
        fingerprint("c17"),
        (1, 0x0820f9a42e22330d, 0x3fde1745d1745d17)
    );
}

#[test]
fn jtree_backend_is_bit_identical_to_pre_refactor_on_c432() {
    assert_eq!(
        fingerprint("c432"),
        (4, 0x1c5e3e532e60b850, 0x3fd85a8073860d61)
    );
}

#[test]
fn jtree_backend_is_bit_identical_to_pre_refactor_on_alu2() {
    assert_eq!(
        fingerprint("alu2"),
        (4, 0x6e9823d657c42a74, 0x3fd67a8890c91701)
    );
}

/// The sparse cost-model regression, pinned at the kernel-cost level for
/// every circuit that ever regressed: the original global "compress when
/// ≥50% zeros" rule made `SparseMode::Auto` *slower* than dense on c880
/// (0.934× in BENCH_sparse.json), and the first per-clique constant
/// (`3·nnz < len`, calibrated against the per-entry dense loops) lost on
/// alu2 once the blocked fused kernels sped the dense sweep up another
/// 1.5–2×. The recalibrated model only compresses a clique when
/// `5·nnz < len`, so auto's kernel cost can never exceed dense's on any
/// of these — and results stay bit-identical either way.
#[test]
fn sparse_auto_never_costs_more_than_dense() {
    for name in ["c17", "c432", "c880"] {
        let circuit = catalog::benchmark(name).unwrap();
        let spec = InputSpec::uniform(circuit.num_inputs());
        let compile = |sparse| {
            let options = Options {
                sparse,
                ..Options::default()
            };
            CompiledEstimator::compile(&circuit, &options).unwrap()
        };
        let auto = compile(SparseMode::Auto);
        let dense = compile(SparseMode::Off);
        assert!(
            auto.kernel_cost() <= dense.kernel_cost(),
            "{name}: auto ({}) must never out-cost dense ({})",
            auto.kernel_cost(),
            dense.kernel_cost()
        );
        // The choice is per clique, not a blanket "stay dense": c880's
        // multi-gate cliques clear the 80%-zero break-even, while c17's
        // single-gate cliques (≤75% zero) deliberately stay dense under
        // the fused-kernel cost model.
        match name {
            "c17" => assert_eq!(auto.compressed_cliques(), 0),
            "c880" => assert!(auto.compressed_cliques() > 0),
            _ => {}
        }
        let from_auto = auto.estimate(&spec).unwrap();
        let from_dense = dense.estimate(&spec).unwrap();
        for line in circuit.line_ids() {
            assert_eq!(
                from_auto.switching(line).to_bits(),
                from_dense.switching(line).to_bits(),
                "sparse storage must not change results on {name}:{}",
                circuit.line_name(line)
            );
        }
    }
}
