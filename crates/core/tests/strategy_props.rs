//! Structure-strategy guarantees: FORCE never regresses the compiled
//! model, and no two strategies can ever share a cache entry or an
//! on-disk artifact.

use swact::{
    artifact, CompiledEstimator, InputSpec, Options, OrderingStrategy, SegmentationStrategy,
    StructureStrategy,
};
use swact_circuit::catalog;

fn options_with(strategy: StructureStrategy, budget: usize) -> Options {
    Options {
        segment_budget: budget,
        strategy,
        ..Options::default()
    }
}

/// FORCE is a best-of-two selection per segment (greedy vs. FORCE-guided
/// tie-breaks, kept only when cheaper), so the compiled model can never
/// be worse than greedy's — on any circuit, at any budget.
#[test]
fn force_never_worsens_kernel_cost_on_c432() {
    let c432 = catalog::benchmark("c432").unwrap();
    for budget in [1 << 12, 1 << 16] {
        let greedy =
            CompiledEstimator::compile(&c432, &options_with(StructureStrategy::GREEDY, budget))
                .unwrap();
        let force =
            CompiledEstimator::compile(&c432, &options_with(StructureStrategy::force(), budget))
                .unwrap();
        assert!(
            force.kernel_cost() <= greedy.kernel_cost(),
            "budget {budget}: force kernel cost {} exceeds greedy {}",
            force.kernel_cost(),
            greedy.kernel_cost()
        );
        assert!(
            force.total_states() <= greedy.total_states(),
            "budget {budget}: force state space {} exceeds greedy {}",
            force.total_states(),
            greedy.total_states()
        );
    }
}

/// Where the FORCE tie-break finds smaller trees it must actually take
/// them: at this budget alu2 has segments where the layout-guided order
/// wins, and the stats must say so.
#[test]
fn force_wins_are_recorded_on_alu2() {
    let alu2 = catalog::benchmark("alu2").unwrap();
    let budget = 1 << 16;
    let greedy =
        CompiledEstimator::compile(&alu2, &options_with(StructureStrategy::GREEDY, budget))
            .unwrap();
    let force =
        CompiledEstimator::compile(&alu2, &options_with(StructureStrategy::force(), budget))
            .unwrap();
    assert_eq!(greedy.force_ordered_segments(), 0);
    assert!(force.force_ordered_segments() > 0);
    assert!(force.total_states() < greedy.total_states());
    assert!(force.nnz() < greedy.nnz());
}

/// FORCE changes only the elimination order, never the joint distribution:
/// both models answer within floating-point noise of each other.
#[test]
fn force_estimates_match_greedy_numerically() {
    let c432 = catalog::benchmark("c432").unwrap();
    let spec = InputSpec::uniform(c432.num_inputs());
    let budget = 1 << 16;
    let greedy =
        CompiledEstimator::compile(&c432, &options_with(StructureStrategy::GREEDY, budget))
            .unwrap()
            .estimate(&spec)
            .unwrap();
    let force =
        CompiledEstimator::compile(&c432, &options_with(StructureStrategy::force(), budget))
            .unwrap()
            .estimate(&spec)
            .unwrap();
    for line in c432.line_ids() {
        let diff = (greedy.switching(line) - force.switching(line)).abs();
        assert!(
            diff < 1e-9,
            "{}: greedy {} vs force {}",
            c432.line_name(line),
            greedy.switching(line),
            force.switching(line)
        );
    }
}

/// Every strategy combination keys a distinct model: artifacts and engine
/// cache entries can never be served across strategies.
#[test]
fn strategies_never_share_a_model_key() {
    let c17 = catalog::c17();
    let spec = InputSpec::uniform(c17.num_inputs());
    let combos = [
        StructureStrategy::GREEDY,
        StructureStrategy::force(),
        StructureStrategy::balanced_cut(),
        StructureStrategy {
            ordering: OrderingStrategy::Force,
            segmentation: SegmentationStrategy::BalancedCut,
        },
    ];
    let keys: Vec<u128> = combos
        .iter()
        .map(|&s| artifact::model_key(&c17, Some(&spec), &Options::with_strategy(s)))
        .collect();
    for (i, &a) in keys.iter().enumerate() {
        for (j, &b) in keys.iter().enumerate() {
            if i != j {
                assert_ne!(a, b, "{} aliases {}", combos[i], combos[j]);
            }
        }
    }
}

/// A persisted greedy artifact warm-loads bit-identically, and a FORCE
/// request can never pick it up — its key names a different file.
#[test]
fn persisted_greedy_artifact_is_strategy_isolated_and_bit_identical() {
    let c432 = catalog::benchmark("c432").unwrap();
    let spec = InputSpec::uniform(c432.num_inputs());
    let options = options_with(StructureStrategy::GREEDY, 1 << 12);
    let compiled = CompiledEstimator::compile_for(&c432, &spec, &options).unwrap();
    let fresh = compiled.estimate(&spec).unwrap();

    let dir = std::env::temp_dir().join(format!("swact-strategy-iso-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let key = artifact::model_key(&c432, Some(&spec), &options);
    artifact::write_artifact(&dir, key, &compiled).unwrap();

    // The FORCE-keyed file name differs, so a FORCE request misses cleanly.
    let force_options = options_with(StructureStrategy::force(), 1 << 12);
    let force_key = artifact::model_key(&c432, Some(&spec), &force_options);
    assert_ne!(key, force_key);
    let force_path = dir.join(artifact::artifact_file_name(force_key));
    assert!(
        !force_path.exists(),
        "force key must not address the greedy artifact"
    );

    // The greedy warm start reproduces the fresh estimate bit-for-bit.
    let path = dir.join(artifact::artifact_file_name(key));
    let (_, loaded) = artifact::read_artifact(&path, Some(key)).unwrap();
    let warm = loaded.estimate(&spec).unwrap();
    for line in c432.line_ids() {
        assert_eq!(
            fresh.switching(line).to_bits(),
            warm.switching(line).to_bits(),
            "line {}",
            c432.line_name(line)
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
