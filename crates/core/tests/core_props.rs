//! Property tests for the core crate's building blocks: gate CPTs,
//! transition encodings, and input models.

use proptest::prelude::*;
use swact::{gate_cpt, gate_family, InputModel, Transition, TransitionDist};
use swact_circuit::{GateKind, LineId};

fn multi_input_kinds() -> impl Strategy<Value = GateKind> {
    proptest::sample::select(vec![
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every gate CPT row is a point distribution on the state the gate's
    /// truth table dictates at both clock slices.
    #[test]
    fn gate_cpt_rows_are_correct_point_masses(
        kind in multi_input_kinds(),
        fanin in 1usize..4,
    ) {
        let cpt = gate_cpt(kind, fanin);
        prop_assert_eq!(cpt.num_rows(), 4usize.pow(fanin as u32));
        for (row_idx, row) in cpt.as_rows().iter().enumerate() {
            // Decode the parent assignment (last parent fastest).
            let mut states = vec![0usize; fanin];
            let mut rem = row_idx;
            for i in (0..fanin).rev() {
                states[i] = rem % 4;
                rem /= 4;
            }
            let prev = kind.eval(states.iter().map(|&s| Transition::from_index(s).prev()));
            let next = kind.eval(states.iter().map(|&s| Transition::from_index(s).next()));
            let expected = Transition::from_values(prev, next).index();
            for (state, &p) in row.iter().enumerate() {
                prop_assert_eq!(p, if state == expected { 1.0 } else { 0.0 });
            }
        }
    }

    /// `gate_family` with duplicated inputs evaluates the gate with the
    /// repeated line bound consistently.
    #[test]
    fn gate_family_handles_duplicates(
        kind in multi_input_kinds(),
        pattern in proptest::collection::vec(0usize..2, 2..4),
    ) {
        // Inputs drawn from two distinct lines per `pattern`.
        let lines: Vec<LineId> = pattern.iter().map(|&i| LineId::from_index(i)).collect();
        let (unique, cpt) = gate_family(kind, &lines);
        prop_assert!(unique.len() <= 2);
        let k = unique.len();
        prop_assert_eq!(cpt.num_rows(), 4usize.pow(k as u32));
        // Check every row against direct evaluation.
        for (row_idx, row) in cpt.as_rows().iter().enumerate() {
            let mut states = vec![0usize; k];
            let mut rem = row_idx;
            for i in (0..k).rev() {
                states[i] = rem % 4;
                rem /= 4;
            }
            let state_of = |line: LineId| -> Transition {
                let pos = unique.iter().position(|&u| u == line).unwrap();
                Transition::from_index(states[pos])
            };
            let prev = kind.eval(lines.iter().map(|&l| state_of(l).prev()));
            let next = kind.eval(lines.iter().map(|&l| state_of(l).next()));
            let expected = Transition::from_values(prev, next).index();
            prop_assert_eq!(row[expected], 1.0);
            prop_assert_eq!(row.iter().sum::<f64>(), 1.0);
        }
    }

    /// InputModel feasibility: `new` accepts exactly the (p1, activity)
    /// region of stationary chains, and the produced distribution returns
    /// the same parameters.
    #[test]
    fn input_model_round_trips(p1 in 0.0f64..=1.0, scale in 0.0f64..=1.0) {
        let max_activity = 2.0 * p1.min(1.0 - p1);
        let activity = max_activity * scale;
        let model = InputModel::new(p1, activity).expect("within the feasible region");
        let d = model.to_distribution();
        prop_assert!((d.switching() - activity).abs() < 1e-12);
        prop_assert!((d.p_one_next() - p1).abs() < 1e-9);
        prop_assert!(d.is_stationary(1e-12));
        // Beyond the feasible boundary: rejected.
        if max_activity < 0.98 {
            prop_assert!(InputModel::new(p1, max_activity + 0.02).is_err());
        }
    }

    /// Transition encoding is a bijection consistent with prev/next bits.
    #[test]
    fn transition_encoding_bijective(prev in any::<bool>(), next in any::<bool>()) {
        let t = Transition::from_values(prev, next);
        prop_assert_eq!(t.prev(), prev);
        prop_assert_eq!(t.next(), next);
        prop_assert_eq!(Transition::from_index(t.index()), t);
        prop_assert_eq!(t.is_switch(), prev != next);
    }

    /// TransitionDist invariants under arbitrary normalized inputs.
    #[test]
    fn transition_dist_invariants(raw in proptest::collection::vec(0.01f64..1.0, 4)) {
        let total: f64 = raw.iter().sum();
        let d = TransitionDist::new([
            raw[0] / total,
            raw[1] / total,
            raw[2] / total,
            raw[3] / total,
        ]);
        prop_assert!((0.0..=1.0).contains(&d.switching()));
        prop_assert!((d.p_one_prev() + d.p(Transition::Stable0) + d.p(Transition::Rise) - 1.0).abs() < 1e-9);
        // switching + stable mass = 1
        let stable = d.p(Transition::Stable0) + d.p(Transition::Stable1);
        prop_assert!((stable + d.switching() - 1.0).abs() < 1e-9);
    }
}
