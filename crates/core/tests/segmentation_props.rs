//! Property tests for [`SegmentationPlan`] over randomly generated
//! netlists: whatever the budget, the plan must cover every gate exactly
//! once, give every root a valid provenance, and order segments (and
//! gates within them) topologically.

use std::collections::{HashMap, HashSet};

use proptest::prelude::*;
use swact::{RootSource, SegmentationPlan};
use swact_bayesnet::Heuristic;
use swact_circuit::benchgen::{generate, GeneratorConfig};
use swact_circuit::decompose::decompose_fanin;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn plans_are_exact_covers_with_valid_roots(
        inputs in 3usize..9,
        gates in 8usize..60,
        seed in 0u64..1_000_000,
        locality in 0.3f64..1.0,
        budget_bits in 6u32..16,
        check_interval in 1usize..6,
    ) {
        let circuit = generate(&GeneratorConfig {
            name: "prop",
            inputs,
            outputs: 1 + gates % 3,
            gates,
            seed,
            locality,
            max_fanin: 4,
        });
        // The planner operates on the fan-in-decomposed working circuit,
        // exactly as the pipeline prepares it.
        let working = decompose_fanin(&circuit, 4).unwrap();
        let plan = SegmentationPlan::plan(
            &working,
            4,
            1usize << budget_bits,
            check_interval,
            Heuristic::MinFill,
        );

        // 1. Every gate of the working circuit in exactly one segment.
        let mut seen_gates = HashSet::new();
        for seg in plan.segments() {
            for &g in &seg.gates {
                prop_assert!(working.gate(g).is_some(), "root listed as gate");
                prop_assert!(seen_gates.insert(g), "gate {g:?} appears twice");
            }
        }
        prop_assert_eq!(seen_gates.len(), working.num_gates());

        // 2. Root provenance: a PrimaryInput root names its PI position; a
        //    Boundary root was produced as a gate of an EARLIER segment.
        let mut produced_in: HashMap<_, usize> = HashMap::new();
        for (idx, seg) in plan.segments().iter().enumerate() {
            for &g in &seg.gates {
                produced_in.insert(g, idx);
            }
        }
        for (idx, seg) in plan.segments().iter().enumerate() {
            let root_lines: HashSet<_> = seg.roots.iter().map(|&(l, _)| l).collect();
            prop_assert_eq!(root_lines.len(), seg.roots.len(), "duplicate roots");
            for &(line, source) in &seg.roots {
                match source {
                    RootSource::PrimaryInput(pos) => {
                        prop_assert_eq!(working.inputs()[pos], line);
                    }
                    RootSource::Boundary => {
                        let producer = produced_in.get(&line);
                        prop_assert!(
                            matches!(producer, Some(&p) if p < idx),
                            "boundary root {line:?} of segment {idx} produced in {producer:?}"
                        );
                    }
                }
            }

            // 3. Topological order inside the segment: every gate's inputs
            //    are segment roots or earlier gates of the same segment.
            let mut available = root_lines;
            for &g in &seg.gates {
                for &input in &working.gate(g).unwrap().inputs {
                    prop_assert!(
                        available.contains(&input),
                        "gate {g:?} reads {input:?} before it is available"
                    );
                }
                available.insert(g);
            }
        }

        // 4. The boundary-root count accessor agrees with the segments.
        let boundary: usize = plan
            .segments()
            .iter()
            .flat_map(|s| &s.roots)
            .filter(|(_, src)| *src == RootSource::Boundary)
            .count();
        prop_assert_eq!(plan.boundary_roots(), boundary);
    }
}
