//! Property tests for the on-disk artifact layer: a compiled pipeline
//! survives `compile → persist → load → propagate` with bit-identical
//! (`f64::to_bits`) results on c17 and c432 across sparse modes and the
//! jtree/bdd backends, and no mutilated byte stream — corrupted,
//! truncated, or version-bumped — ever panics or decodes.

use std::sync::OnceLock;

use proptest::prelude::*;
use swact::artifact::{self, ArtifactError};
use swact::{Backend, CompiledEstimator, InputModel, InputSpec, Options, SparseMode};
use swact_circuit::{catalog, Circuit};

struct Combo {
    label: String,
    circuit: Circuit,
    /// The estimator as compiled in this process.
    original: CompiledEstimator,
    /// The same estimator after an encode → decode round trip.
    loaded: CompiledEstimator,
}

/// Every (circuit × backend/sparse) combination under test, compiled and
/// round-tripped once — the properties then drive both estimators through
/// arbitrary input specs. Sparse mode only matters to the jtree backend,
/// so bdd is compiled once per circuit.
fn combos() -> &'static [Combo] {
    static CELL: OnceLock<Vec<Combo>> = OnceLock::new();
    CELL.get_or_init(|| {
        let mut out = Vec::new();
        for name in ["c17", "c432"] {
            let variants = [
                (Backend::Jtree, SparseMode::On),
                (Backend::Jtree, SparseMode::Off),
                (Backend::Bdd, SparseMode::Auto),
            ];
            for (backend, sparse) in variants {
                let circuit = catalog::benchmark(name).unwrap();
                let options = Options {
                    backend,
                    sparse,
                    ..Options::default()
                };
                let spec = InputSpec::uniform(circuit.num_inputs());
                let original = CompiledEstimator::compile_for(&circuit, &spec, &options).unwrap();
                let key = artifact::model_key(&circuit, Some(&spec), &options);
                let bytes = artifact::encode_artifact(key, &original);
                let (header, loaded) = artifact::decode_artifact(&bytes, Some(key)).unwrap();
                assert_eq!(header.model_key, key);
                out.push(Combo {
                    label: format!("{name}/{backend:?}/{sparse:?}"),
                    circuit,
                    original,
                    loaded,
                });
            }
        }
        out
    })
}

/// Encoded artifact bytes (and their key) for the smallest combo — the
/// mutation properties only need one real artifact to mangle.
fn c17_artifact() -> &'static (u128, Vec<u8>) {
    static CELL: OnceLock<(u128, Vec<u8>)> = OnceLock::new();
    CELL.get_or_init(|| {
        let circuit = catalog::c17();
        let options = Options::default();
        let spec = InputSpec::uniform(circuit.num_inputs());
        let compiled = CompiledEstimator::compile_for(&circuit, &spec, &options).unwrap();
        let key = artifact::model_key(&circuit, Some(&spec), &options);
        (key, artifact::encode_artifact(key, &compiled))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A loaded artifact propagates bit-identically to the estimator it
    /// was encoded from, for every input spec — not just the one the
    /// model was compiled for (probabilities are not part of the model).
    #[test]
    fn round_trip_propagates_bit_identically(
        combo_idx in 0usize..6,
        p1s in proptest::collection::vec(0.05f64..0.95, 36),
    ) {
        let combo = &combos()[combo_idx];
        let models: Vec<InputModel> = p1s
            .iter()
            .take(combo.circuit.num_inputs())
            .map(|&p| InputModel::independent(p))
            .collect();
        let spec = InputSpec::from_models(models);
        let from_original = combo.original.estimate(&spec).unwrap();
        let from_loaded = combo.loaded.estimate(&spec).unwrap();
        for line in combo.circuit.line_ids() {
            let a = from_original.distribution(line).as_array();
            let b = from_loaded.distribution(line).as_array();
            for (x, y) in a.iter().zip(b.iter()) {
                prop_assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{} diverges on {}",
                    &combo.label,
                    combo.circuit.line_name(line)
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Flipping any single byte anywhere in an artifact — header, magic,
    /// version, key, checksum, or payload — must yield a typed error,
    /// never a panic and never a silently-wrong decode.
    #[test]
    fn single_byte_corruption_is_always_rejected(
        pos in 0usize..usize::MAX,
        flip in 1u8..=255,
    ) {
        let (key, bytes) = c17_artifact();
        let mut mutated = bytes.clone();
        let pos = pos % mutated.len();
        mutated[pos] ^= flip;
        let result = artifact::decode_artifact(&mutated, Some(*key));
        prop_assert!(
            result.is_err(),
            "byte {} xor {:#04x} went undetected",
            pos,
            flip
        );
    }

    /// Truncating an artifact at any point must be rejected cleanly.
    #[test]
    fn truncation_is_always_rejected(cut in 0usize..usize::MAX) {
        let (key, bytes) = c17_artifact();
        let cut = cut % bytes.len();
        let result = artifact::decode_artifact(&bytes[..cut], Some(*key));
        prop_assert!(result.is_err(), "truncation at {} went undetected", cut);
    }

    /// Any format version other than the current one is rejected as
    /// `UnsupportedVersion` before the payload is even looked at.
    #[test]
    fn version_bumps_are_always_rejected(version in 0u32..=u32::MAX) {
        prop_assume!(version != artifact::FORMAT_VERSION);
        let (key, bytes) = c17_artifact();
        let mut mutated = bytes.clone();
        // The format version is the little-endian u32 right after the
        // 8-byte magic.
        mutated[8..12].copy_from_slice(&version.to_le_bytes());
        match artifact::decode_artifact(&mutated, Some(*key)) {
            Err(ArtifactError::UnsupportedVersion { found }) => {
                prop_assert_eq!(found, version);
            }
            other => prop_assert!(false, "expected UnsupportedVersion, got {:?}", other.map(|(h, _)| h)),
        }
    }
}
