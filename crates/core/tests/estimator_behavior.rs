//! Behavioral tests of the estimator facade, moved out of the old
//! monolithic `estimator.rs` when it became a thin wrapper over
//! `pipeline/` — everything here runs against the public API.

use swact::{
    estimate, CompiledEstimator, EstimateError, InputModel, InputSpec, Options, Transition,
};
use swact_circuit::{catalog, Circuit, CircuitBuilder, GateKind};

/// Brute-force exact switching by enumerating all (prev, next) input
/// pairs weighted by the spec.
fn exhaustive_switching(circuit: &Circuit, spec: &InputSpec) -> Vec<f64> {
    let n = circuit.num_inputs();
    assert!(
        2 * n <= 20,
        "exhaustive reference limited to small circuits"
    );
    let order = circuit.topo_order();
    let eval = |assignment: &[bool]| -> Vec<bool> {
        let mut values = vec![false; circuit.num_lines()];
        for (i, &pi) in circuit.inputs().iter().enumerate() {
            values[pi.index()] = assignment[i];
        }
        for &line in &order {
            if let Some(g) = circuit.gate(line) {
                values[line.index()] = g.kind.eval(g.inputs.iter().map(|&l| values[l.index()]));
            }
        }
        values
    };
    let mut switching = vec![0.0; circuit.num_lines()];
    for prev_case in 0..1usize << n {
        let prev: Vec<bool> = (0..n).map(|i| prev_case >> i & 1 == 1).collect();
        let prev_vals = eval(&prev);
        for next_case in 0..1usize << n {
            let next: Vec<bool> = (0..n).map(|i| next_case >> i & 1 == 1).collect();
            let mut weight = 1.0;
            for i in 0..n {
                let t = Transition::from_values(prev[i], next[i]);
                weight *= spec.model(i).to_distribution().p(t);
            }
            if weight == 0.0 {
                continue;
            }
            let next_vals = eval(&next);
            for line in circuit.line_ids() {
                if prev_vals[line.index()] != next_vals[line.index()] {
                    switching[line.index()] += weight;
                }
            }
        }
    }
    switching
}

#[test]
fn single_bn_estimate_is_exact_on_c17() {
    let c17 = catalog::c17();
    let spec = InputSpec::uniform(5);
    let est = estimate(&c17, &spec, &Options::single_bn()).unwrap();
    assert_eq!(est.num_segments(), 1);
    let exact = exhaustive_switching(&c17, &spec);
    for line in c17.line_ids() {
        assert!(
            (est.switching(line) - exact[line.index()]).abs() < 1e-9,
            "line {}: {} vs {}",
            c17.line_name(line),
            est.switching(line),
            exact[line.index()]
        );
    }
}

#[test]
fn exact_under_biased_and_correlated_inputs() {
    let c17 = catalog::c17();
    let spec = InputSpec::from_models(vec![
        InputModel::new(0.3, 0.2).unwrap(),
        InputModel::independent(0.9),
        InputModel::new(0.5, 0.1).unwrap(),
        InputModel::independent(0.2),
        InputModel::new(0.7, 0.3).unwrap(),
    ]);
    let est = estimate(&c17, &spec, &Options::single_bn()).unwrap();
    let exact = exhaustive_switching(&c17, &spec);
    for line in c17.line_ids() {
        assert!(
            (est.switching(line) - exact[line.index()]).abs() < 1e-9,
            "line {}",
            c17.line_name(line)
        );
    }
}

#[test]
fn exact_on_paper_example() {
    let circuit = catalog::paper_example();
    let spec = InputSpec::independent([0.4, 0.6, 0.5, 0.3]);
    let est = estimate(&circuit, &spec, &Options::single_bn()).unwrap();
    let exact = exhaustive_switching(&circuit, &spec);
    for line in circuit.line_ids() {
        assert!((est.switching(line) - exact[line.index()]).abs() < 1e-9);
    }
}

#[test]
fn reconvergent_fanout_handled_exactly() {
    // The regime where independence assumptions fail: shared inputs.
    let c = swact_circuit::benchgen::reconvergent("rc", 4, 3, 11);
    let spec = InputSpec::uniform(4);
    let est = estimate(&c, &spec, &Options::single_bn()).unwrap();
    let exact = exhaustive_switching(&c, &spec);
    for line in c.line_ids() {
        assert!(
            (est.switching(line) - exact[line.index()]).abs() < 1e-9,
            "line {}",
            c.line_name(line)
        );
    }
}

#[test]
fn segmentation_error_is_small() {
    // Force many segments on a circuit small enough for the exhaustive
    // reference, and check the boundary-induced error stays tiny.
    let c = swact_circuit::benchgen::generate(&swact_circuit::benchgen::GeneratorConfig {
        inputs: 8,
        outputs: 3,
        gates: 40,
        ..swact_circuit::benchgen::GeneratorConfig::default_for("segtest")
    });
    let spec = InputSpec::uniform(8);
    let exact = exhaustive_switching(&c, &spec);
    let run = |budget: usize| {
        let est = estimate(
            &c,
            &spec,
            &Options {
                segment_budget: budget,
                check_interval: 1,
                ..Options::default()
            },
        )
        .unwrap();
        let stats = est.compare(&exact);
        (est.num_segments(), stats)
    };
    let (segments_small, stats_small) = run(1 << 9);
    assert!(segments_small > 1, "budget must force splitting");
    // Boundary-marginal forwarding keeps node errors modest even with
    // absurdly tiny segments, and the circuit-average stays tight
    // (the paper's σ ~ 1e-3 regime corresponds to far larger budgets).
    assert!(
        stats_small.mean_abs_error < 0.05,
        "mean segmentation error {}",
        stats_small.mean_abs_error
    );
    assert!(
        stats_small.max_abs_error < 0.25,
        "worst segmentation error {}",
        stats_small.max_abs_error
    );
    // A larger budget gives fewer segments and no worse average error.
    let (segments_large, stats_large) = run(1 << 18);
    assert!(segments_large < segments_small);
    assert!(stats_large.mean_abs_error <= stats_small.mean_abs_error + 1e-3);
}

#[test]
fn compiled_estimator_repropagates_consistently() {
    let c17 = catalog::c17();
    let compiled = CompiledEstimator::compile(&c17, &Options::default()).unwrap();
    let spec_a = InputSpec::uniform(5);
    let spec_b = InputSpec::independent([0.8, 0.2, 0.5, 0.9, 0.1]);
    let first = compiled.estimate(&spec_a).unwrap();
    let _second = compiled.estimate(&spec_b).unwrap();
    let third = compiled.estimate(&spec_a).unwrap();
    for line in c17.line_ids() {
        assert!(
            (first.switching(line) - third.switching(line)).abs() < 1e-12,
            "re-propagation must be idempotent"
        );
    }
}

#[test]
fn single_bn_too_large_is_reported() {
    let c = catalog::benchmark("c880").unwrap();
    let result = estimate(
        &c,
        &InputSpec::uniform(c.num_inputs()),
        &Options {
            single_bn: true,
            // Even a tree-shaped 383-gate circuit needs far more than
            // 2⁸ junction-tree states.
            segment_budget: 1 << 8,
            ..Options::default()
        },
    );
    assert!(matches!(result, Err(EstimateError::TooLarge { .. })));
}

#[test]
fn spec_size_checked() {
    let c17 = catalog::c17();
    assert!(matches!(
        estimate(&c17, &InputSpec::uniform(4), &Options::default()),
        Err(EstimateError::InputCountMismatch { .. })
    ));
}

#[test]
fn frozen_inputs_produce_zero_switching() {
    let c17 = catalog::c17();
    let spec = InputSpec::from_models(vec![InputModel::new(0.5, 0.0).unwrap(); 5]);
    let est = estimate(&c17, &spec, &Options::default()).unwrap();
    for line in c17.line_ids() {
        assert!(est.switching(line).abs() < 1e-12);
    }
}

#[test]
fn wide_gate_circuit_estimates_match_exhaustive() {
    let mut b = CircuitBuilder::new("wide");
    for n in ["a", "b", "c", "d", "e"] {
        b.input(n).unwrap();
    }
    b.gate("y", GateKind::Nor, &["a", "b", "c", "d", "e"])
        .unwrap();
    b.gate("z", GateKind::Xor, &["y", "a"]).unwrap();
    b.output("z").unwrap();
    let c = b.finish().unwrap();
    let spec = InputSpec::independent([0.2, 0.4, 0.6, 0.8, 0.5]);
    let est = estimate(
        &c,
        &spec,
        &Options {
            max_fanin: 2,
            ..Options::single_bn()
        },
    )
    .unwrap();
    let exact = exhaustive_switching(&c, &spec);
    for line in c.line_ids() {
        assert!(
            (est.switching(line) - exact[line.index()]).abs() < 1e-9,
            "line {} (through decomposition)",
            c.line_name(line)
        );
    }
}

#[test]
fn stationarity_of_internal_lines() {
    // Stationary inputs make every internal line stationary too.
    let c = catalog::paper_example();
    let spec = InputSpec::from_models(vec![
        InputModel::new(0.3, 0.1).unwrap(),
        InputModel::new(0.7, 0.2).unwrap(),
        InputModel::independent(0.5),
        InputModel::new(0.4, 0.3).unwrap(),
    ]);
    let est = estimate(&c, &spec, &Options::single_bn()).unwrap();
    for line in c.line_ids() {
        assert!(
            est.distribution(line).is_stationary(1e-9),
            "line {} not stationary",
            c.line_name(line)
        );
    }
}

#[test]
fn stage_timings_cover_all_stages() {
    let c = catalog::benchmark("c432").unwrap();
    let compiled = CompiledEstimator::compile(&c, &Options::default()).unwrap();
    let est = compiled
        .estimate(&InputSpec::uniform(c.num_inputs()))
        .unwrap();
    let stages = est.stage_timings();
    // Compile-side stages come from compilation, propagate from this pass.
    assert!(stages.model > std::time::Duration::ZERO);
    assert!(stages.compile > std::time::Duration::ZERO);
    assert!(stages.propagate > std::time::Duration::ZERO);
    assert_eq!(est.segment_timings().len(), est.num_segments());
    assert!(est
        .segment_timings()
        .iter()
        .all(|t| t.compile > std::time::Duration::ZERO));
    // The compiled estimator exposes the compile-side breakdown directly.
    assert_eq!(
        compiled.stage_timings().propagate,
        std::time::Duration::ZERO
    );
    assert!(compiled.stage_timings().compile_side() <= compiled.compile_time());
}
