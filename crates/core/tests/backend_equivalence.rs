//! Cross-backend equivalence: the junction-tree and OBDD backends are
//! both exact within a segment, so in single-BN mode they must agree on
//! every line to floating-point round-off. The two-state backend drops
//! temporal correlation by construction and must *disagree* under
//! temporally correlated inputs — that divergence is the paper's argument
//! for four-state transition variables.

use swact::{estimate, Backend, InputModel, InputSpec, Options};
use swact_circuit::{catalog, Circuit};

fn options_for(backend: Backend) -> Options {
    Options {
        backend,
        ..Options::single_bn()
    }
}

fn correlated_spec(n: usize) -> InputSpec {
    InputSpec::from_models(vec![InputModel::new(0.5, 0.1).unwrap(); n])
}

fn assert_backends_agree(circuit: &Circuit, spec: &InputSpec) {
    let jtree = estimate(circuit, spec, &options_for(Backend::Jtree)).unwrap();
    let bdd = estimate(circuit, spec, &options_for(Backend::Bdd)).unwrap();
    for line in circuit.line_ids() {
        let a = jtree.distribution(line).as_array();
        let b = bdd.distribution(line).as_array();
        for t in 0..4 {
            assert!(
                (a[t] - b[t]).abs() < 1e-12,
                "line {} state {}: jtree {} vs bdd {}",
                circuit.line_name(line),
                t,
                a[t],
                b[t]
            );
        }
    }
}

#[test]
fn jtree_and_bdd_agree_on_c17() {
    let c17 = catalog::c17();
    assert_backends_agree(&c17, &InputSpec::uniform(5));
    assert_backends_agree(&c17, &correlated_spec(5));
}

#[test]
fn jtree_and_bdd_agree_on_reconvergent_netlist() {
    // Reconvergent fanout is exactly where approximate methods diverge;
    // both exact backends must still match.
    let c = swact_circuit::benchgen::reconvergent("rc", 4, 3, 11);
    assert_backends_agree(&c, &InputSpec::uniform(4));
    assert_backends_agree(&c, &correlated_spec(4));
}

#[test]
fn twostate_diverges_under_temporal_correlation() {
    // Inputs hold their value 90% of the time (switching activity 0.1).
    // The two-state proxy sees only p1 = 0.5 and predicts 2p(1−p) = 0.5
    // switching everywhere, so it must overshoot the exact answer badly.
    let c17 = catalog::c17();
    let spec = correlated_spec(5);
    let exact = estimate(&c17, &spec, &options_for(Backend::Jtree)).unwrap();
    let two = estimate(&c17, &spec, &options_for(Backend::TwoState)).unwrap();
    let max_diff = c17
        .outputs()
        .iter()
        .map(|&o| (exact.switching(o) - two.switching(o)).abs())
        .fold(0.0f64, f64::max);
    assert!(
        max_diff > 0.05,
        "two-state should diverge under temporal correlation, max diff {max_diff}"
    );
}

#[test]
fn twostate_matches_signal_probabilities_without_temporal_correlation() {
    // With temporally independent inputs on a fanout-free (tree) circuit,
    // the two-state product model and the exact model coincide.
    let c = {
        let mut b = swact_circuit::CircuitBuilder::new("tree");
        for n in ["a", "b", "c", "d"] {
            b.input(n).unwrap();
        }
        b.gate("x", swact_circuit::GateKind::And, &["a", "b"])
            .unwrap();
        b.gate("y", swact_circuit::GateKind::Or, &["c", "d"])
            .unwrap();
        b.gate("z", swact_circuit::GateKind::Nand, &["x", "y"])
            .unwrap();
        b.output("z").unwrap();
        b.finish().unwrap()
    };
    let spec = InputSpec::independent([0.3, 0.8, 0.5, 0.6]);
    let exact = estimate(&c, &spec, &options_for(Backend::Jtree)).unwrap();
    let two = estimate(&c, &spec, &options_for(Backend::TwoState)).unwrap();
    for line in c.line_ids() {
        assert!(
            (exact.switching(line) - two.switching(line)).abs() < 1e-9,
            "line {}: exact {} vs twostate {}",
            c.line_name(line),
            exact.switching(line),
            two.switching(line)
        );
    }
}
