//! Property tests for the netlist substrate: generated circuits are
//! structurally sound and transformations preserve the Boolean function.

use proptest::prelude::*;
use swact_circuit::benchgen::{generate, GeneratorConfig};
use swact_circuit::decompose::decompose_fanin;
use swact_circuit::{Circuit, Driver};

fn arb_circuit() -> impl Strategy<Value = Circuit> {
    (2usize..8, 2usize..30, any::<u64>()).prop_map(|(inputs, gates, seed)| {
        generate(&GeneratorConfig {
            inputs,
            outputs: 1 + gates / 10,
            gates,
            seed,
            ..GeneratorConfig::default_for("prop")
        })
    })
}

fn eval(circuit: &Circuit, assignment: usize) -> Vec<bool> {
    let mut values = vec![false; circuit.num_lines()];
    for (i, &pi) in circuit.inputs().iter().enumerate() {
        values[pi.index()] = assignment >> i & 1 == 1;
    }
    for line in circuit.topo_order() {
        if let Some(g) = circuit.gate(line) {
            values[line.index()] = g.kind.eval(g.inputs.iter().map(|&l| values[l.index()]));
        }
    }
    values
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Topological order is a valid schedule: every gate after its inputs.
    #[test]
    fn topo_order_is_consistent(circuit in arb_circuit()) {
        let order = circuit.topo_order();
        prop_assert_eq!(order.len(), circuit.num_lines());
        let mut pos = vec![usize::MAX; circuit.num_lines()];
        for (i, l) in order.iter().enumerate() {
            pos[l.index()] = i;
        }
        for line in circuit.line_ids() {
            if let Driver::Gate(g) = circuit.driver(line) {
                for input in &g.inputs {
                    prop_assert!(pos[input.index()] < pos[line.index()]);
                }
            }
        }
    }

    /// Levels increase along every edge, and the depth matches the stats.
    #[test]
    fn levels_are_monotone(circuit in arb_circuit()) {
        let levels = circuit.levels();
        for line in circuit.line_ids() {
            if let Driver::Gate(g) = circuit.driver(line) {
                for input in &g.inputs {
                    prop_assert!(levels[input.index()] < levels[line.index()]);
                }
            }
        }
        prop_assert_eq!(
            circuit.stats().depth,
            levels.iter().copied().max().unwrap_or(0)
        );
    }

    /// Fan-in decomposition preserves the Boolean function on every line
    /// that survives by name, for several bounds.
    #[test]
    fn decomposition_preserves_function(circuit in arb_circuit(), case in any::<usize>()) {
        let n = circuit.num_inputs();
        let assignment = case & ((1 << n) - 1);
        let original = eval(&circuit, assignment);
        for bound in [2usize, 3] {
            let narrow = decompose_fanin(&circuit, bound).expect("decomposes");
            prop_assert!(narrow.stats().max_fanin <= bound);
            let values = eval(&narrow, assignment);
            for line in circuit.line_ids() {
                let name = circuit.line_name(line);
                let mapped = narrow.find_line(name).expect("name preserved");
                prop_assert_eq!(
                    values[mapped.index()],
                    original[line.index()],
                    "line {} under bound {}", name, bound
                );
            }
        }
    }

    /// The generator meets its interface contract exactly and produces no
    /// dead logic.
    #[test]
    fn generator_contract(inputs in 2usize..10, gates in 3usize..50, seed in any::<u64>()) {
        let outputs = 1 + gates / 10;
        prop_assume!(gates >= outputs);
        let circuit = generate(&GeneratorConfig {
            inputs,
            outputs,
            gates,
            seed,
            ..GeneratorConfig::default_for("contract")
        });
        prop_assert_eq!(circuit.num_inputs(), inputs);
        prop_assert_eq!(circuit.num_outputs(), outputs);
        prop_assert_eq!(circuit.num_gates(), gates);
        // Every *gate* always reaches an output (reduction construction);
        // every *input* does too once the gate budget can host them all.
        let cone = circuit.fanin_cone(circuit.outputs());
        let gate_lines_in_cone = cone.iter().filter(|&&l| !circuit.is_input(l)).count();
        prop_assert_eq!(gate_lines_in_cone, gates);
        if gates >= 2 * inputs {
            prop_assert_eq!(cone.len(), circuit.num_lines(), "dead inputs");
        }
    }

    /// Fanout bookkeeping matches a direct recount.
    #[test]
    fn fanout_counts_consistent(circuit in arb_circuit()) {
        let counts = circuit.fanout_counts();
        let lists = circuit.fanouts();
        let total_inputs: usize = circuit
            .gate_lines()
            .map(|l| circuit.gate(l).unwrap().inputs.len())
            .sum();
        prop_assert_eq!(counts.iter().sum::<usize>(), total_inputs);
        for line in circuit.line_ids() {
            prop_assert_eq!(counts[line.index()], lists[line.index()].len());
        }
    }
}
