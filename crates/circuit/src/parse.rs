//! ISCAS-85 `.bench` netlist format.
//!
//! The format is line oriented:
//!
//! ```text
//! # comment
//! INPUT(1)
//! INPUT(2)
//! OUTPUT(5)
//! 5 = NAND(1, 2)
//! ```
//!
//! `DFF` (sequential elements from the ISCAS-89 extension) is rejected —
//! this crate models combinational logic only, as does the paper.

use std::collections::HashMap;

use crate::{Circuit, CircuitBuilder, CircuitError, GateKind};

/// Parses `.bench` source text into a [`Circuit`].
///
/// # Errors
///
/// Returns [`CircuitError::Parse`] for malformed lines and the usual
/// structural errors ([`CircuitError::Cycle`], [`CircuitError::UnknownLine`],
/// …) for well-formed but invalid netlists.
///
/// # Example
///
/// ```
/// use swact_circuit::parse::parse_bench;
///
/// # fn main() -> Result<(), swact_circuit::CircuitError> {
/// let src = "
///     INPUT(a)
///     INPUT(b)
///     OUTPUT(y)
///     y = AND(a, b)
/// ";
/// let c = parse_bench("tiny", src)?;
/// assert_eq!(c.num_gates(), 1);
/// # Ok(())
/// # }
/// ```
pub fn parse_bench(name: &str, source: &str) -> Result<Circuit, CircuitError> {
    let mut builder = CircuitBuilder::new(name);
    // Structural errors (cycles, undriven nets) only surface when the
    // whole netlist is assembled in `finish()`, long after the offending
    // source line went by — so remember where each net was declared and
    // first referenced to point the eventual error back at its line.
    let mut declared_at: HashMap<String, usize> = HashMap::new();
    let mut referenced_at: HashMap<String, usize> = HashMap::new();
    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let line = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = strip_directive(line, "INPUT") {
            declared_at.entry(rest.to_string()).or_insert(line_no);
            builder.input(rest).map_err(|e| parse_err(line_no, e))?;
        } else if let Some(rest) = strip_directive(line, "OUTPUT") {
            referenced_at.entry(rest.to_string()).or_insert(line_no);
            builder.output(rest).map_err(|e| parse_err(line_no, e))?;
        } else if let Some(eq) = line.find('=') {
            let output = line[..eq].trim();
            if output.is_empty() {
                return Err(CircuitError::Parse {
                    line_no,
                    message: "missing output name before `=`".into(),
                });
            }
            let rhs = line[eq + 1..].trim();
            let open = rhs.find('(').ok_or_else(|| CircuitError::Parse {
                line_no,
                message: format!("expected `KIND(...)` after `=`, got `{rhs}`"),
            })?;
            if !rhs.ends_with(')') {
                return Err(CircuitError::Parse {
                    line_no,
                    message: "missing closing `)`".into(),
                });
            }
            let kind_str = rhs[..open].trim();
            if kind_str.eq_ignore_ascii_case("DFF") {
                return Err(CircuitError::Parse {
                    line_no,
                    message: "sequential element DFF is not supported (combinational only)".into(),
                });
            }
            let kind: GateKind = kind_str.parse().map_err(|_| CircuitError::Parse {
                line_no,
                message: format!("unknown gate kind `{kind_str}`"),
            })?;
            let args_str = &rhs[open + 1..rhs.len() - 1];
            let args: Vec<&str> = if args_str.trim().is_empty() {
                Vec::new()
            } else {
                args_str.split(',').map(str::trim).collect()
            };
            if args.iter().any(|a| a.is_empty()) {
                return Err(CircuitError::Parse {
                    line_no,
                    message: "empty argument in gate input list".into(),
                });
            }
            declared_at.entry(output.to_string()).or_insert(line_no);
            for arg in &args {
                referenced_at.entry((*arg).to_string()).or_insert(line_no);
            }
            builder
                .gate(output, kind, &args)
                .map_err(|e| parse_err(line_no, e))?;
        } else {
            return Err(CircuitError::Parse {
                line_no,
                message: format!("unrecognized statement `{line}`"),
            });
        }
    }
    builder.finish().map_err(|e| {
        // Cycles point at the gate declaring the looping net; undriven
        // nets point at the statement that first referenced them.
        // Whole-file errors (NoInputs/NoOutputs) have no single line.
        let at = match &e {
            CircuitError::Cycle(name) => declared_at.get(name).copied(),
            CircuitError::UnknownLine(name) => referenced_at.get(name).copied(),
            _ => None,
        };
        match at {
            Some(line_no) => CircuitError::Parse {
                line_no,
                message: e.to_string(),
            },
            None => e,
        }
    })
}

fn strip_directive<'a>(line: &'a str, keyword: &str) -> Option<&'a str> {
    // ISCAS-89 tools emit INPUT/input/Input interchangeably; keywords are
    // ASCII, so a byte-wise case-insensitive prefix match is safe.
    if line.len() < keyword.len() || !line.is_char_boundary(keyword.len()) {
        return None;
    }
    let (head, rest) = line.split_at(keyword.len());
    if !head.eq_ignore_ascii_case(keyword) {
        return None;
    }
    let rest = rest.trim_start();
    let inner = rest.strip_prefix('(')?.strip_suffix(')')?;
    let inner = inner.trim();
    if inner.is_empty() {
        None
    } else {
        Some(inner)
    }
}

fn parse_err(line_no: usize, e: CircuitError) -> CircuitError {
    match e {
        CircuitError::Parse { .. } => e,
        other => CircuitError::Parse {
            line_no,
            message: other.to_string(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::write::to_bench;

    #[test]
    fn parses_c17_shape() {
        let c = crate::catalog::c17();
        assert_eq!(c.num_inputs(), 5);
        assert_eq!(c.num_outputs(), 2);
        assert_eq!(c.num_gates(), 6);
        assert!(c
            .gate_lines()
            .all(|l| c.gate(l).unwrap().kind == GateKind::Nand));
    }

    #[test]
    fn round_trip_through_writer() {
        let original = crate::catalog::c17();
        let text = to_bench(&original);
        let reparsed = parse_bench(original.name(), &text).unwrap();
        assert_eq!(reparsed.num_lines(), original.num_lines());
        assert_eq!(reparsed.num_inputs(), original.num_inputs());
        assert_eq!(reparsed.num_outputs(), original.num_outputs());
        for line in original.line_ids() {
            let name = original.line_name(line);
            let other = reparsed.find_line(name).expect("line survives");
            match (original.gate(line), reparsed.gate(other)) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert_eq!(a.kind, b.kind);
                    let an: Vec<_> = a.inputs.iter().map(|&i| original.line_name(i)).collect();
                    let bn: Vec<_> = b.inputs.iter().map(|&i| reparsed.line_name(i)).collect();
                    assert_eq!(an, bn);
                }
                _ => panic!("driver class changed for `{name}`"),
            }
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let src = "\n# header\nINPUT(a) # trailing\n\nOUTPUT(y)\ny = NOT(a)\n";
        let c = parse_bench("t", src).unwrap();
        assert_eq!(c.num_gates(), 1);
    }

    #[test]
    fn case_insensitive_kinds_and_buff_alias() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nt = buff(a)\ny = nand(t, b)\n";
        let c = parse_bench("t", src).unwrap();
        let t = c.find_line("t").unwrap();
        assert_eq!(c.gate(t).unwrap().kind, GateKind::Buf);
    }

    #[test]
    fn directives_are_case_insensitive() {
        // Netlists in the wild mix INPUT/Input/input (and the same for
        // OUTPUT); all spellings must parse to the same circuit.
        let src = "Input(a)\ninput(b)\nINPUT(c)\nOutput(y)\nt = AND(a, b)\ny = OR(t, c)\n";
        let c = parse_bench("mixed", src).unwrap();
        assert_eq!(c.num_inputs(), 3);
        assert_eq!(c.num_outputs(), 1);
        assert_eq!(c.num_gates(), 2);
        // A gate line whose name merely starts with a keyword is not a
        // directive.
        let src = "INPUT(a)\nOUTPUT(inputy)\ninputy = NOT(a)\n";
        let c = parse_bench("prefix", src).unwrap();
        assert_eq!(c.num_gates(), 1);
        // Non-ASCII input cannot panic the byte-wise prefix check.
        assert!(parse_bench("utf8", "Ínput(a)\n").is_err());
    }

    #[test]
    fn rejects_dff() {
        let src = "INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n";
        let err = parse_bench("seq", src).unwrap_err();
        assert!(matches!(err, CircuitError::Parse { line_no: 3, .. }));
    }

    #[test]
    fn rejects_garbage_statement() {
        let err = parse_bench("g", "INPUT(a)\nwat\n").unwrap_err();
        assert!(matches!(err, CircuitError::Parse { line_no: 2, .. }));
    }

    #[test]
    fn rejects_missing_paren() {
        let err = parse_bench("g", "INPUT(a)\nOUTPUT(y)\ny = NOT(a\n").unwrap_err();
        assert!(matches!(err, CircuitError::Parse { line_no: 3, .. }));
    }

    #[test]
    fn rejects_unknown_kind() {
        let err = parse_bench("g", "INPUT(a)\nOUTPUT(y)\ny = MAJ3(a, a, a)\n").unwrap_err();
        assert!(matches!(err, CircuitError::Parse { line_no: 3, .. }));
    }

    #[test]
    fn rejects_empty_arg() {
        let err = parse_bench("g", "INPUT(a)\nOUTPUT(y)\ny = AND(a, )\n").unwrap_err();
        assert!(matches!(err, CircuitError::Parse { line_no: 3, .. }));
    }

    #[test]
    fn structural_error_carries_line_number() {
        let err = parse_bench("g", "INPUT(a)\nINPUT(a)\n").unwrap_err();
        assert!(matches!(err, CircuitError::Parse { line_no: 2, .. }));
    }

    #[test]
    fn rejects_cycle_with_line_number() {
        let src = "INPUT(a)\nOUTPUT(y)\nx = AND(a, y)\ny = AND(a, x)\n";
        let err = parse_bench("g", src).unwrap_err();
        match err {
            CircuitError::Parse { line_no, message } => {
                assert!(line_no == 3 || line_no == 4, "line_no = {line_no}");
                assert!(message.contains("cycle"), "message = {message}");
            }
            other => panic!("expected Parse, got {other:?}"),
        }
    }

    #[test]
    fn rejects_self_loop_with_line_number() {
        let src = "INPUT(a)\nOUTPUT(y)\ny = AND(a, y)\n";
        let err = parse_bench("g", src).unwrap_err();
        match err {
            CircuitError::Parse { line_no, message } => {
                assert_eq!(line_no, 3);
                assert!(message.contains("cycle"), "message = {message}");
            }
            other => panic!("expected Parse, got {other:?}"),
        }
    }

    #[test]
    fn rejects_undriven_net_with_line_number() {
        let src = "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n";
        let err = parse_bench("g", src).unwrap_err();
        match err {
            CircuitError::Parse { line_no, message } => {
                assert_eq!(line_no, 3);
                assert!(message.contains("ghost"), "message = {message}");
            }
            other => panic!("expected Parse, got {other:?}"),
        }
    }

    #[test]
    fn rejects_undriven_output_with_line_number() {
        let src = "INPUT(a)\nOUTPUT(ghost)\nt = NOT(a)\nOUTPUT(t)\n";
        let err = parse_bench("g", src).unwrap_err();
        match err {
            CircuitError::Parse { line_no, message } => {
                assert_eq!(line_no, 2);
                assert!(message.contains("ghost"), "message = {message}");
            }
            other => panic!("expected Parse, got {other:?}"),
        }
    }

    #[test]
    fn rejects_duplicate_driver_with_line_number() {
        let src = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUFF(a)\n";
        let err = parse_bench("g", src).unwrap_err();
        match err {
            CircuitError::Parse { line_no, message } => {
                assert_eq!(line_no, 4);
                assert!(message.contains('y'), "message = {message}");
            }
            other => panic!("expected Parse, got {other:?}"),
        }
    }
}
