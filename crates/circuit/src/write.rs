//! Serialization of circuits: `.bench` text and Graphviz DOT.

use std::fmt::Write as _;

use crate::{Circuit, Driver};

/// Renders a circuit as ISCAS-85 `.bench` text.
///
/// The output parses back to a structurally identical circuit via
/// [`parse_bench`](crate::parse::parse_bench).
///
/// # Example
///
/// ```
/// use swact_circuit::{catalog, parse::parse_bench, write::to_bench};
///
/// # fn main() -> Result<(), swact_circuit::CircuitError> {
/// let c17 = catalog::c17();
/// let text = to_bench(&c17);
/// let back = parse_bench("c17", &text)?;
/// assert_eq!(back.num_gates(), c17.num_gates());
/// # Ok(())
/// # }
/// ```
pub fn to_bench(circuit: &Circuit) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {}", circuit.name());
    let _ = writeln!(
        out,
        "# {} inputs, {} outputs, {} gates",
        circuit.num_inputs(),
        circuit.num_outputs(),
        circuit.num_gates()
    );
    for &input in circuit.inputs() {
        let _ = writeln!(out, "INPUT({})", circuit.line_name(input));
    }
    for &output in circuit.outputs() {
        let _ = writeln!(out, "OUTPUT({})", circuit.line_name(output));
    }
    for line in circuit.topo_order() {
        if let Driver::Gate(g) = circuit.driver(line) {
            let args: Vec<&str> = g.inputs.iter().map(|&i| circuit.line_name(i)).collect();
            let _ = writeln!(
                out,
                "{} = {}({})",
                circuit.line_name(line),
                g.kind.mnemonic(),
                args.join(", ")
            );
        }
    }
    out
}

/// Renders the circuit as a Graphviz `digraph` (gates as boxes, primary
/// inputs as ellipses, primary outputs double-bordered).
///
/// This reproduces the style of Figure 1 of the paper when applied to
/// [`catalog::paper_example`](crate::catalog::paper_example).
pub fn to_dot(circuit: &Circuit) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", circuit.name());
    let _ = writeln!(out, "  rankdir=LR;");
    for line in circuit.line_ids() {
        let name = circuit.line_name(line);
        let (shape, label) = match circuit.driver(line) {
            Driver::Input => ("ellipse".to_string(), name.to_string()),
            Driver::Gate(g) => ("box".to_string(), format!("{name}\\n{}", g.kind)),
        };
        let peripheries = if circuit.is_output(line) { 2 } else { 1 };
        let _ = writeln!(
            out,
            "  n{} [shape={shape}, peripheries={peripheries}, label=\"{label}\"];",
            line.index()
        );
    }
    for line in circuit.line_ids() {
        if let Driver::Gate(g) = circuit.driver(line) {
            for &input in &g.inputs {
                let _ = writeln!(out, "  n{} -> n{};", input.index(), line.index());
            }
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders the circuit as structural Verilog using primitive gates.
///
/// Net names are normalized to `n<index>` (Verilog identifiers are more
/// restrictive than `.bench` names); the original name is kept as a
/// trailing comment on each declaration. Wide parity gates are legal
/// Verilog (`xor`/`xnor` primitives take any arity), as are the other
/// primitives; constant drivers become `assign` statements.
///
/// # Example
///
/// ```
/// use swact_circuit::{catalog, write::to_verilog};
///
/// let v = to_verilog(&catalog::c17());
/// assert!(v.contains("module c17"));
/// assert_eq!(v.matches("nand ").count(), 6);
/// ```
pub fn to_verilog(circuit: &Circuit) -> String {
    let mut out = String::new();
    let net = |line: crate::LineId| format!("n{}", line.index());
    let ports: Vec<String> = circuit
        .inputs()
        .iter()
        .chain(circuit.outputs())
        .map(|&l| net(l))
        .collect();
    let _ = writeln!(out, "// generated from {}", circuit.name());
    let _ = writeln!(
        out,
        "module {} ({});",
        sanitize_module_name(circuit.name()),
        ports.join(", ")
    );
    for &input in circuit.inputs() {
        let _ = writeln!(
            out,
            "  input {}; // {}",
            net(input),
            circuit.line_name(input)
        );
    }
    for &output in circuit.outputs() {
        let _ = writeln!(
            out,
            "  output {}; // {}",
            net(output),
            circuit.line_name(output)
        );
    }
    for line in circuit.gate_lines() {
        if !circuit.is_output(line) {
            let _ = writeln!(out, "  wire {}; // {}", net(line), circuit.line_name(line));
        }
    }
    for (k, line) in circuit.topo_order().into_iter().enumerate() {
        let Driver::Gate(g) = circuit.driver(line) else {
            continue;
        };
        let args: Vec<String> = std::iter::once(net(line))
            .chain(g.inputs.iter().map(|&i| net(i)))
            .collect();
        let primitive = match g.kind {
            crate::GateKind::And => "and",
            crate::GateKind::Nand => "nand",
            crate::GateKind::Or => "or",
            crate::GateKind::Nor => "nor",
            crate::GateKind::Xor => "xor",
            crate::GateKind::Xnor => "xnor",
            crate::GateKind::Not => "not",
            crate::GateKind::Buf => "buf",
            crate::GateKind::Const0 => {
                let _ = writeln!(out, "  assign {} = 1'b0;", net(line));
                continue;
            }
            crate::GateKind::Const1 => {
                let _ = writeln!(out, "  assign {} = 1'b1;", net(line));
                continue;
            }
        };
        let _ = writeln!(out, "  {primitive} g{k} ({});", args.join(", "));
    }
    let _ = writeln!(out, "endmodule");
    out
}

fn sanitize_module_name(name: &str) -> String {
    let mut sanitized: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if sanitized
        .chars()
        .next()
        .is_none_or(|c| !(c.is_ascii_alphabetic() || c == '_'))
    {
        sanitized.insert(0, 'm');
    }
    sanitized
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn bench_output_contains_all_sections() {
        let text = to_bench(&catalog::c17());
        assert_eq!(text.matches("INPUT(").count(), 5);
        assert_eq!(text.matches("OUTPUT(").count(), 2);
        assert_eq!(text.matches("= NAND(").count(), 6);
    }

    #[test]
    fn verilog_covers_every_gate_and_port() {
        let c = catalog::c17();
        let v = to_verilog(&c);
        assert!(v.contains("module c17"));
        assert_eq!(v.matches("  input ").count(), c.num_inputs());
        assert_eq!(v.matches("  output ").count(), c.num_outputs());
        assert_eq!(v.matches("nand g").count(), 6);
        assert!(v.trim_end().ends_with("endmodule"));
    }

    #[test]
    fn verilog_handles_every_gate_kind() {
        use crate::{CircuitBuilder, GateKind};
        let mut b = CircuitBuilder::new("123 weird-name");
        b.input("a").unwrap();
        b.input("b").unwrap();
        for (i, kind) in [
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ]
        .into_iter()
        .enumerate()
        {
            b.gate(&format!("g{i}"), kind, &["a", "b"]).unwrap();
        }
        b.gate("inv", GateKind::Not, &["a"]).unwrap();
        b.gate("pass", GateKind::Buf, &["b"]).unwrap();
        b.gate("k0", GateKind::Const0, &[]).unwrap();
        b.gate(
            "top",
            GateKind::Or,
            &["g0", "g1", "g2", "g3", "g4", "g5", "inv", "pass", "k0"],
        )
        .unwrap();
        b.output("top").unwrap();
        let v = to_verilog(&b.finish().unwrap());
        for prim in [
            "and ", "nand ", "or ", "nor ", "xor ", "xnor ", "not ", "buf ",
        ] {
            assert!(v.contains(prim), "missing {prim}");
        }
        assert!(v.contains("assign") && v.contains("1'b0"));
        // Module name sanitized to a legal identifier.
        assert!(v.contains("module m123_weird_name"));
    }

    #[test]
    fn dot_output_is_well_formed() {
        let c = catalog::paper_example();
        let dot = to_dot(&c);
        assert!(dot.starts_with("digraph"));
        assert!(dot.trim_end().ends_with('}'));
        // one node statement per line, one edge per gate input connection
        assert_eq!(dot.matches("[shape=").count(), c.num_lines());
        let edge_count: usize = c
            .gate_lines()
            .map(|l| c.gate(l).unwrap().inputs.len())
            .sum();
        assert_eq!(dot.matches(" -> ").count(), edge_count);
    }
}
