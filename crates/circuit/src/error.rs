use std::error::Error;
use std::fmt;

/// Errors produced while building, parsing, or validating a [`Circuit`].
///
/// [`Circuit`]: crate::Circuit
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CircuitError {
    /// A line name was declared twice (as input or gate output).
    DuplicateLine(String),
    /// A gate or output referenced a line that was never declared.
    UnknownLine(String),
    /// A gate was declared with no inputs.
    EmptyGate(String),
    /// A unary gate ([`GateKind::Not`] / [`GateKind::Buf`]) was given more
    /// than one input, or a constant gate was given any.
    ///
    /// [`GateKind::Not`]: crate::GateKind::Not
    /// [`GateKind::Buf`]: crate::GateKind::Buf
    ArityMismatch {
        /// The offending gate's output line name.
        line: String,
        /// Number of inputs supplied.
        got: usize,
    },
    /// The netlist contains a combinational cycle through the named line.
    Cycle(String),
    /// The circuit has no primary inputs.
    NoInputs,
    /// The circuit has no primary outputs.
    NoOutputs,
    /// A `.bench` source line could not be parsed.
    Parse {
        /// 1-based line number in the source text.
        line_no: usize,
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::DuplicateLine(name) => {
                write!(f, "line `{name}` is declared more than once")
            }
            CircuitError::UnknownLine(name) => {
                write!(f, "line `{name}` is referenced but never declared")
            }
            CircuitError::EmptyGate(name) => {
                write!(f, "gate driving `{name}` has no inputs")
            }
            CircuitError::ArityMismatch { line, got } => {
                write!(f, "gate driving `{line}` has invalid arity {got}")
            }
            CircuitError::Cycle(name) => {
                write!(f, "combinational cycle detected through line `{name}`")
            }
            CircuitError::NoInputs => write!(f, "circuit has no primary inputs"),
            CircuitError::NoOutputs => write!(f, "circuit has no primary outputs"),
            CircuitError::Parse { line_no, message } => {
                write!(f, "parse error at line {line_no}: {message}")
            }
        }
    }
}

impl Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_specific() {
        let e = CircuitError::DuplicateLine("n5".into());
        assert_eq!(e.to_string(), "line `n5` is declared more than once");
        let e = CircuitError::Parse {
            line_no: 3,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CircuitError>();
    }
}
