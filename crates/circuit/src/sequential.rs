//! Sequential netlists: ISCAS-89-style `.bench` files with `DFF` elements.
//!
//! A sequential circuit is handled as its *combinational core* plus a list
//! of registers: every flip-flop output `Q` becomes an extra primary input
//! of the core (a *state input*, appended after the true primary inputs),
//! and its data line `D` is the corresponding *next-state* line. Analyses
//! that work on [`Circuit`] then apply frame-wise; the `swact` estimator
//! closes the loop with a fixed-point iteration over the state lines'
//! statistics.

use crate::parse::parse_bench;
use crate::{Circuit, CircuitError, LineId};

/// One flip-flop of a [`SequentialCircuit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Register {
    /// The register's output name (`q = DFF(d)`).
    pub name: String,
    /// Position of the state input within the core's input list
    /// (`core.inputs()[position]`).
    pub state_input: usize,
    /// The next-state (data) line inside the core.
    pub next_state: LineId,
}

/// A sequential circuit: combinational core + registers.
///
/// # Example
///
/// ```
/// use swact_circuit::sequential::parse_bench_sequential;
///
/// # fn main() -> Result<(), swact_circuit::CircuitError> {
/// let src = "
///     INPUT(en)
///     OUTPUT(q)
///     q = DFF(d)
///     d = XOR(q, en)
/// ";
/// let seq = parse_bench_sequential("toggle", src)?;
/// assert_eq!(seq.num_primary_inputs(), 1);
/// assert_eq!(seq.registers().len(), 1);
/// // The core sees 2 inputs: `en` plus the state input `q`.
/// assert_eq!(seq.core().num_inputs(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SequentialCircuit {
    core: Circuit,
    registers: Vec<Register>,
    primary_inputs: usize,
}

impl SequentialCircuit {
    /// The combinational core (state inputs appended after the true
    /// primary inputs).
    pub fn core(&self) -> &Circuit {
        &self.core
    }

    /// The registers, in declaration order.
    pub fn registers(&self) -> &[Register] {
        &self.registers
    }

    /// Number of true primary inputs (positions `0..n` of the core's input
    /// list; state inputs follow).
    pub fn num_primary_inputs(&self) -> usize {
        self.primary_inputs
    }

    /// The state-input line of register `r` in the core.
    pub fn state_line(&self, r: usize) -> LineId {
        self.core.inputs()[self.registers[r].state_input]
    }

    /// Assembles a sequential circuit from parts (used by the netlist
    /// parsers).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownLine`] when a register's state-input
    /// position or next-state line is out of range for the core.
    pub fn from_parts(
        core: Circuit,
        registers: Vec<Register>,
        primary_inputs: usize,
    ) -> Result<SequentialCircuit, CircuitError> {
        if primary_inputs + registers.len() != core.num_inputs() {
            return Err(CircuitError::UnknownLine(format!(
                "{} core inputs vs {} primaries + {} registers",
                core.num_inputs(),
                primary_inputs,
                registers.len()
            )));
        }
        for reg in &registers {
            if reg.state_input >= core.num_inputs() || reg.next_state.index() >= core.num_lines() {
                return Err(CircuitError::UnknownLine(reg.name.clone()));
            }
        }
        Ok(SequentialCircuit {
            core,
            registers,
            primary_inputs,
        })
    }
}

/// Parses `.bench` source that may contain `DFF` elements into a
/// [`SequentialCircuit`]. Purely combinational sources parse to a circuit
/// with zero registers.
///
/// # Errors
///
/// Returns [`CircuitError::Parse`] for malformed lines and the usual
/// structural errors for invalid netlists (e.g. a `DFF` whose data line
/// never appears).
pub fn parse_bench_sequential(name: &str, source: &str) -> Result<SequentialCircuit, CircuitError> {
    // Pre-scan: pull DFF statements out, remember (q, d) pairs, and count
    // the true primary inputs so state inputs can be appended after them.
    let mut combinational = String::new();
    let mut dff_pairs: Vec<(String, String)> = Vec::new();
    let mut input_names: Vec<String> = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let line = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        }
        .trim();
        if let Some(eq) = line.find('=') {
            let rhs = line[eq + 1..].trim();
            let kind = rhs.split('(').next().unwrap_or("").trim();
            if kind.eq_ignore_ascii_case("DFF") {
                let output = line[..eq].trim();
                let open = rhs.find('(').ok_or(CircuitError::Parse {
                    line_no,
                    message: "malformed DFF statement".into(),
                })?;
                let inner = rhs[open + 1..]
                    .strip_suffix(')')
                    .ok_or(CircuitError::Parse {
                        line_no,
                        message: "missing closing `)` on DFF".into(),
                    })?
                    .trim();
                if inner.is_empty() || inner.contains(',') {
                    return Err(CircuitError::Parse {
                        line_no,
                        message: "DFF takes exactly one data line".into(),
                    });
                }
                dff_pairs.push((output.to_string(), inner.to_string()));
                continue;
            }
        }
        if let Some(inner) = line
            .strip_prefix("INPUT")
            .and_then(|r| r.trim_start().strip_prefix('('))
            .and_then(|r| r.strip_suffix(')'))
        {
            input_names.push(inner.trim().to_string());
        }
        combinational.push_str(raw);
        combinational.push('\n');
    }
    // Register outputs become extra INPUT declarations, appended after the
    // true primary inputs (they were removed from the gate list above).
    for (q, _) in &dff_pairs {
        combinational.push_str(&format!("INPUT({q})\n"));
    }
    let core = parse_bench(name, &combinational)?;
    let primary_inputs = input_names.len();
    let registers = dff_pairs
        .into_iter()
        .enumerate()
        .map(|(i, (q, d))| {
            let next_state = core
                .find_line(&d)
                .ok_or_else(|| CircuitError::UnknownLine(d.clone()))?;
            Ok(Register {
                name: q,
                state_input: primary_inputs + i,
                next_state,
            })
        })
        .collect::<Result<Vec<_>, CircuitError>>()?;
    Ok(SequentialCircuit {
        core,
        registers,
        primary_inputs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const COUNTER2: &str = "
        # 2-bit counter with enable
        INPUT(en)
        OUTPUT(q0)
        OUTPUT(q1)
        q0 = DFF(d0)
        q1 = DFF(d1)
        d0 = XOR(q0, en)
        t1 = AND(q0, en)
        d1 = XOR(q1, t1)
    ";

    #[test]
    fn parses_counter() {
        let seq = parse_bench_sequential("counter2", COUNTER2).unwrap();
        assert_eq!(seq.num_primary_inputs(), 1);
        assert_eq!(seq.registers().len(), 2);
        assert_eq!(seq.core().num_inputs(), 3);
        assert_eq!(seq.core().num_gates(), 3);
        // State inputs come after the primary input.
        assert_eq!(seq.core().line_name(seq.state_line(0)), "q0");
        assert_eq!(seq.core().line_name(seq.state_line(1)), "q1");
        // Next-state lines resolve.
        assert_eq!(seq.core().line_name(seq.registers()[0].next_state), "d0");
    }

    #[test]
    fn combinational_sources_have_no_registers() {
        let seq = parse_bench_sequential("comb", "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n")
            .unwrap();
        assert!(seq.registers().is_empty());
        assert_eq!(seq.num_primary_inputs(), 2);
    }

    #[test]
    fn dangling_data_line_rejected() {
        let err =
            parse_bench_sequential("bad", "INPUT(a)\nOUTPUT(q)\nq = DFF(ghost)\n").unwrap_err();
        assert!(matches!(err, CircuitError::UnknownLine(_)));
    }

    #[test]
    fn multi_input_dff_rejected() {
        let err =
            parse_bench_sequential("bad", "INPUT(a)\nOUTPUT(q)\nq = DFF(a, a)\n").unwrap_err();
        assert!(matches!(err, CircuitError::Parse { .. }));
    }

    #[test]
    fn feedback_through_register_is_legal() {
        // q = DFF(d), d = NOT(q): a combinational cycle would be rejected,
        // but through a register it parses (q is just an input).
        let seq =
            parse_bench_sequential("osc", "INPUT(en)\nOUTPUT(q)\nq = DFF(d)\nd = NAND(q, en)\n")
                .unwrap();
        assert_eq!(seq.registers().len(), 1);
    }
}
