//! BLIF (Berkeley Logic Interchange Format) parsing.
//!
//! The MCNC benchmark suites — the other half of the paper's Table 1 — are
//! distributed as BLIF. This module reads the combinational+latch subset:
//!
//! * `.model`, `.inputs`, `.outputs` (with `\` line continuation),
//! * `.names` single-output covers, synthesized as two-level logic
//!   (one AND per cube, an OR across cubes, complemented for off-set
//!   covers) over `NOT`/`AND`/`OR`/`BUF` gates,
//! * `.latch` elements, mapped to registers of a
//!   [`SequentialCircuit`],
//! * `.end` and `#` comments.
//!
//! Helper lines introduced by cover synthesis are named
//! `<output>__cube<k>` and `<line>__inv`; those suffixes are reserved.

use std::collections::HashMap;

use crate::sequential::SequentialCircuit;
use crate::{Circuit, CircuitBuilder, CircuitError, GateKind};

/// Parses BLIF source into a sequential circuit (zero registers when the
/// model is purely combinational).
///
/// # Errors
///
/// Returns [`CircuitError::Parse`] for malformed or unsupported
/// constructs (multiple `.model`s, `.exdc`, mixed-polarity covers) and the
/// usual structural errors for invalid netlists.
///
/// # Example
///
/// ```
/// use swact_circuit::blif::parse_blif;
///
/// # fn main() -> Result<(), swact_circuit::CircuitError> {
/// let src = "
///     .model mux
///     .inputs s a b
///     .outputs y
///     .names s a b y
///     01- 1
///     1-1 1
///     .end
/// ";
/// let seq = parse_blif("mux", src)?;
/// assert_eq!(seq.num_primary_inputs(), 3);
/// assert!(seq.registers().is_empty());
/// # Ok(())
/// # }
/// ```
pub fn parse_blif(name: &str, source: &str) -> Result<SequentialCircuit, CircuitError> {
    let statements = logical_lines(source);
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut covers: Vec<Cover> = Vec::new();
    let mut latches: Vec<(String, String)> = Vec::new(); // (d, q)
    let mut saw_model = false;

    let mut i = 0;
    while i < statements.len() {
        let (line_no, ref text) = statements[i];
        let mut tokens = text.split_whitespace();
        let head = tokens.next().expect("logical lines are non-empty");
        match head {
            ".model" => {
                if saw_model {
                    return Err(parse_err(line_no, "multiple .model sections"));
                }
                saw_model = true;
                i += 1;
            }
            ".inputs" => {
                inputs.extend(tokens.map(str::to_string));
                i += 1;
            }
            ".outputs" => {
                outputs.extend(tokens.map(str::to_string));
                i += 1;
            }
            ".names" => {
                let signals: Vec<String> = tokens.map(str::to_string).collect();
                if signals.is_empty() {
                    return Err(parse_err(line_no, ".names needs at least an output"));
                }
                let (cube_rows, next) = collect_cubes(&statements, i + 1);
                let cover = Cover::parse(line_no, signals, &cube_rows)?;
                covers.push(cover);
                i = next;
            }
            ".latch" => {
                let fields: Vec<&str> = tokens.collect();
                if fields.len() < 2 {
                    return Err(parse_err(line_no, ".latch needs input and output"));
                }
                latches.push((fields[0].to_string(), fields[1].to_string()));
                i += 1;
            }
            ".end" => break,
            other if other.starts_with('.') => {
                return Err(parse_err(
                    line_no,
                    format!("unsupported BLIF construct `{other}`"),
                ));
            }
            _ => {
                return Err(parse_err(line_no, format!("unexpected statement `{text}`")));
            }
        }
    }

    // Build the combinational core: true inputs, then latch outputs.
    let mut b = CircuitBuilder::new(name);
    for input in &inputs {
        b.input(input)?;
    }
    for (_, q) in &latches {
        b.input(q)?;
    }
    // Shared inverter cache across covers.
    let mut inverters: HashMap<String, String> = HashMap::new();
    for cover in &covers {
        cover.synthesize(&mut b, &mut inverters)?;
    }
    for output in &outputs {
        b.output(output)?;
    }
    let core = b.finish()?;
    let registers = latches
        .iter()
        .enumerate()
        .map(|(k, (d, q))| {
            let next_state = core
                .find_line(d)
                .ok_or_else(|| CircuitError::UnknownLine(d.clone()))?;
            Ok(crate::sequential::Register {
                name: q.clone(),
                state_input: inputs.len() + k,
                next_state,
            })
        })
        .collect::<Result<Vec<_>, CircuitError>>()?;
    SequentialCircuit::from_parts(core, registers, inputs.len())
}

/// Parses BLIF known to be combinational, returning a plain [`Circuit`].
///
/// # Errors
///
/// In addition to [`parse_blif`]'s errors, rejects models with latches.
pub fn parse_blif_combinational(name: &str, source: &str) -> Result<Circuit, CircuitError> {
    let seq = parse_blif(name, source)?;
    if !seq.registers().is_empty() {
        return Err(CircuitError::Parse {
            line_no: 0,
            message: format!(
                "model has {} latches; use parse_blif for sequential models",
                seq.registers().len()
            ),
        });
    }
    Ok(seq.core().clone())
}

/// Joins `\`-continued lines, strips comments, and drops blanks; returns
/// `(first line number, text)` per logical line.
fn logical_lines(source: &str) -> Vec<(usize, String)> {
    let mut out: Vec<(usize, String)> = Vec::new();
    let mut pending: Option<(usize, String)> = None;
    for (idx, raw) in source.lines().enumerate() {
        let text = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        let continued = text.trim_end().ends_with('\\');
        let text = text.trim_end().trim_end_matches('\\').trim();
        match pending.take() {
            Some((start, mut acc)) => {
                acc.push(' ');
                acc.push_str(text);
                if continued {
                    pending = Some((start, acc));
                } else if !acc.trim().is_empty() {
                    out.push((start, acc.trim().to_string()));
                }
            }
            None => {
                if continued {
                    pending = Some((idx + 1, text.to_string()));
                } else if !text.is_empty() {
                    out.push((idx + 1, text.to_string()));
                }
            }
        }
    }
    if let Some((start, acc)) = pending {
        if !acc.trim().is_empty() {
            out.push((start, acc.trim().to_string()));
        }
    }
    out
}

/// Rows following a `.names` header until the next dot-statement.
fn collect_cubes(statements: &[(usize, String)], mut i: usize) -> (Vec<(usize, String)>, usize) {
    let mut rows = Vec::new();
    while i < statements.len() && !statements[i].1.starts_with('.') {
        rows.push(statements[i].clone());
        i += 1;
    }
    (rows, i)
}

/// One parsed `.names` cover.
struct Cover {
    inputs: Vec<String>,
    output: String,
    /// Cube rows as literal patterns over `inputs`.
    cubes: Vec<Vec<Literal>>,
    /// Whether rows define the on-set (`1`) or off-set (`0`).
    on_set: bool,
    line_no: usize,
}

#[derive(Clone, Copy, PartialEq)]
enum Literal {
    Positive,
    Negative,
    DontCare,
}

impl Cover {
    fn parse(
        line_no: usize,
        mut signals: Vec<String>,
        rows: &[(usize, String)],
    ) -> Result<Cover, CircuitError> {
        let output = signals.pop().expect("non-empty checked by caller");
        let inputs = signals;
        let mut cubes = Vec::new();
        let mut polarity: Option<bool> = None;
        for (row_no, row) in rows {
            let fields: Vec<&str> = row.split_whitespace().collect();
            let (pattern, value) = match (inputs.is_empty(), fields.as_slice()) {
                (true, [value]) => ("", *value),
                (false, [pattern, value]) => (*pattern, *value),
                _ => {
                    return Err(parse_err(*row_no, format!("malformed cube `{row}`")));
                }
            };
            if pattern.len() != inputs.len() {
                return Err(parse_err(
                    *row_no,
                    format!(
                        "cube `{pattern}` has {} literals for {} inputs",
                        pattern.len(),
                        inputs.len()
                    ),
                ));
            }
            let on = match value {
                "1" => true,
                "0" => false,
                other => {
                    return Err(parse_err(*row_no, format!("bad cube output `{other}`")));
                }
            };
            match polarity {
                None => polarity = Some(on),
                Some(previous) if previous != on => {
                    return Err(parse_err(
                        *row_no,
                        "mixed on-set/off-set covers are not supported",
                    ));
                }
                _ => {}
            }
            let cube = pattern
                .chars()
                .map(|c| match c {
                    '1' => Ok(Literal::Positive),
                    '0' => Ok(Literal::Negative),
                    '-' => Ok(Literal::DontCare),
                    other => Err(parse_err(*row_no, format!("bad literal `{other}`"))),
                })
                .collect::<Result<Vec<_>, _>>()?;
            cubes.push(cube);
        }
        Ok(Cover {
            inputs,
            output,
            cubes,
            on_set: polarity.unwrap_or(true),
            line_no,
        })
    }

    fn synthesize(
        &self,
        b: &mut CircuitBuilder,
        inverters: &mut HashMap<String, String>,
    ) -> Result<(), CircuitError> {
        let _ = self.line_no;
        // Empty cover: constant 0 (standard BLIF semantics).
        if self.cubes.is_empty() {
            b.gate(&self.output, GateKind::Const0, &[])?;
            return Ok(());
        }
        // Literal lines per cube (creating shared inverters on demand).
        let mut cube_lines: Vec<String> = Vec::with_capacity(self.cubes.len());
        let mut constant_one = false;
        for (k, cube) in self.cubes.iter().enumerate() {
            let mut literals: Vec<String> = Vec::new();
            for (input, &literal) in self.inputs.iter().zip(cube) {
                match literal {
                    Literal::Positive => literals.push(input.clone()),
                    Literal::Negative => {
                        if !inverters.contains_key(input) {
                            let inv_name = format!("{input}__inv");
                            b.gate(&inv_name, GateKind::Not, &[input])?;
                            inverters.insert(input.clone(), inv_name);
                        }
                        literals.push(inverters[input].clone());
                    }
                    Literal::DontCare => {}
                }
            }
            match literals.len() {
                0 => {
                    constant_one = true;
                }
                1 => cube_lines.push(literals.pop().expect("one literal")),
                _ => {
                    let cube_name = format!("{}__cube{k}", self.output);
                    let refs: Vec<&str> = literals.iter().map(String::as_str).collect();
                    b.gate(&cube_name, GateKind::And, &refs)?;
                    cube_lines.push(cube_name);
                }
            }
        }
        // Assemble the output with the right polarity.
        let kind_for = |on_set: bool, n: usize| match (on_set, n) {
            (true, 1) => GateKind::Buf,
            (false, 1) => GateKind::Not,
            (true, _) => GateKind::Or,
            (false, _) => GateKind::Nor,
        };
        if constant_one {
            // An all-don't-care cube makes the cover constant.
            let kind = if self.on_set {
                GateKind::Const1
            } else {
                GateKind::Const0
            };
            b.gate(&self.output, kind, &[])?;
            return Ok(());
        }
        let refs: Vec<&str> = cube_lines.iter().map(String::as_str).collect();
        b.gate(&self.output, kind_for(self.on_set, refs.len()), &refs)?;
        Ok(())
    }
}

fn parse_err(line_no: usize, message: impl Into<String>) -> CircuitError {
    CircuitError::Parse {
        line_no,
        message: message.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    /// Tiny helper: evaluate a circuit on one assignment.
    fn eval(circuit: &Circuit, assignment: &[bool]) -> Vec<bool> {
        let mut values = vec![false; circuit.num_lines()];
        for (i, &pi) in circuit.inputs().iter().enumerate() {
            values[pi.index()] = assignment[i];
        }
        for line in circuit.topo_order() {
            if let Some(g) = circuit.gate(line) {
                values[line.index()] = g.kind.eval(g.inputs.iter().map(|&l| values[l.index()]));
            }
        }
        values
    }

    #[test]
    fn mux_cover_matches_truth_table() {
        let src = "
            .model mux
            .inputs s a b
            .outputs y
            .names s a b y
            01- 1
            1-1 1
            .end
        ";
        let c = parse_blif_combinational("mux", src).unwrap();
        let y = c.find_line("y").unwrap();
        for case in 0..8usize {
            let s = case & 1 == 1;
            let a = case & 2 == 2;
            let b_in = case & 4 == 4;
            let want = if s { b_in } else { a };
            assert_eq!(eval(&c, &[s, a, b_in])[y.index()], want, "case {case}");
        }
    }

    #[test]
    fn off_set_cover_is_complemented() {
        // NAND expressed as an off-set: output 0 exactly on 11.
        let src = "
            .model nand2
            .inputs a b
            .outputs y
            .names a b y
            11 0
            .end
        ";
        let c = parse_blif_combinational("nand2", src).unwrap();
        let y = c.find_line("y").unwrap();
        for case in 0..4usize {
            let a = case & 1 == 1;
            let b_in = case & 2 == 2;
            assert_eq!(eval(&c, &[a, b_in])[y.index()], !(a && b_in));
        }
    }

    #[test]
    fn constants_and_buffers() {
        let src = "
            .model consts
            .inputs a
            .outputs one zero pass
            .names one
            1
            .names zero
            .names a pass
            1 1
            .end
        ";
        let c = parse_blif_combinational("consts", src).unwrap();
        let values = eval(&c, &[false]);
        assert!(values[c.find_line("one").unwrap().index()]);
        assert!(!values[c.find_line("zero").unwrap().index()]);
        assert!(!values[c.find_line("pass").unwrap().index()]);
        let values = eval(&c, &[true]);
        assert!(values[c.find_line("pass").unwrap().index()]);
    }

    #[test]
    fn line_continuation_and_comments() {
        let src = "
            .model cont # trailing comment
            .inputs a \\
                    b
            .outputs y
            .names a b y  # the AND
            11 1
            .end
        ";
        let c = parse_blif_combinational("cont", src).unwrap();
        assert_eq!(c.num_inputs(), 2);
        let y = c.find_line("y").unwrap();
        assert!(eval(&c, &[true, true])[y.index()]);
        assert!(!eval(&c, &[true, false])[y.index()]);
    }

    #[test]
    fn latches_become_registers() {
        let src = "
            .model counter1
            .inputs en
            .outputs q
            .latch d q 0
            .names en q d
            01 1
            10 1
            .end
        ";
        let seq = parse_blif("counter1", src).unwrap();
        assert_eq!(seq.registers().len(), 1);
        assert_eq!(seq.num_primary_inputs(), 1);
        assert_eq!(seq.core().line_name(seq.state_line(0)), "q");
        // And the combinational accessor rejects it.
        assert!(parse_blif_combinational("counter1", src).is_err());
    }

    #[test]
    fn shared_inverters_are_reused() {
        let src = "
            .model sharing
            .inputs a b
            .outputs x y
            .names a b x
            00 1
            .names a y
            0 1
            .end
        ";
        let c = parse_blif_combinational("sharing", src).unwrap();
        // One inverter per negated input, shared across covers.
        let inverter_count = c
            .gate_lines()
            .filter(|&l| c.gate(l).unwrap().kind == GateKind::Not)
            .count();
        assert_eq!(inverter_count, 2, "a__inv and b__inv only");
    }

    #[test]
    fn errors_are_reported_with_line_numbers() {
        for (src, needle) in [
            (".model a\n.model b\n", "multiple .model"),
            (".names\n", "at least an output"),
            (".inputs a\n.outputs y\n.names a y\n1 1\n0 0\n", "mixed"),
            (".inputs a\n.outputs y\n.names a y\n11 1\n", "literals"),
            (".inputs a\n.outputs y\n.names a y\nx 1\n", "bad literal"),
            (".inputs a\n.outputs y\n.names a y\n1 7\n", "cube output"),
            (".exdc\n", "unsupported"),
            ("garbage\n", "unexpected"),
            (".latch d\n", ".latch needs"),
        ] {
            let err = parse_blif("bad", src).unwrap_err();
            assert!(
                matches!(&err, CircuitError::Parse { message, .. } if message.contains(needle)),
                "source {src:?} gave {err:?}"
            );
        }
    }

    #[test]
    fn estimation_runs_on_blif_models() {
        // End-to-end smoke: the mux estimates like its .bench equivalent.
        let src = "
            .model mux
            .inputs s a b
            .outputs y
            .names s a b y
            01- 1
            1-1 1
            .end
        ";
        let c = parse_blif_combinational("mux", src).unwrap();
        assert!(c.num_gates() >= 3);
        assert!(c.stats().max_fanin <= 4);
    }
}
