//! The benchmark suite evaluated in the paper.
//!
//! Two circuits are reproduced exactly:
//!
//! * [`c17`] — the smallest ISCAS-85 benchmark (its six NAND gates are
//!   public in countless publications);
//! * [`paper_example`] — the five-gate running example of Figures 1–4 of
//!   Bhanja & Ranganathan (DAC 2001).
//!
//! The remaining 18 benchmarks of Tables 1–2 (ISCAS-85 `c432`…`c7552`,
//! MCNC-89 `alu2`, `malu4`, `max_flat`, `voter`, `b9`, `count`, `comp`,
//! `pcler8`) are not redistributable here, so [`benchmark`] substitutes a
//! deterministic synthetic circuit with the published primary-input /
//! primary-output / gate counts and heavy reconvergent fan-out (see
//! [`benchgen`](crate::benchgen) and DESIGN.md §4). Real `.bench` files can
//! be parsed with [`parse_bench`] and run through
//! the same pipeline.

use crate::benchgen::{generate, GeneratorConfig};
use crate::parse::parse_bench;
use crate::{Circuit, CircuitBuilder, GateKind};

/// Which benchmark family a circuit belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// ISCAS-85 combinational benchmarks (`c17` … `c7552`).
    Iscas85,
    /// MCNC-89 combinational benchmarks.
    Mcnc89,
}

/// Static description of one benchmark circuit from the paper's Tables 1–2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchmarkInfo {
    /// Canonical benchmark name, e.g. `"c432"`.
    pub name: &'static str,
    /// Benchmark family.
    pub family: Family,
    /// Published primary-input count.
    pub inputs: usize,
    /// Published primary-output count.
    pub outputs: usize,
    /// Published (or, for the less-documented MCNC circuits, approximate)
    /// gate count, which the synthetic stand-in matches.
    pub gates: usize,
    /// Whether [`benchmark`] returns the authentic netlist (`true` only for
    /// `c17`) or a synthetic stand-in.
    pub authentic: bool,
}

/// All 19 benchmarks of Table 1, in the paper's row order.
pub const BENCHMARKS: [BenchmarkInfo; 19] = [
    BenchmarkInfo {
        name: "c17",
        family: Family::Iscas85,
        inputs: 5,
        outputs: 2,
        gates: 6,
        authentic: true,
    },
    BenchmarkInfo {
        name: "c432",
        family: Family::Iscas85,
        inputs: 36,
        outputs: 7,
        gates: 160,
        authentic: false,
    },
    BenchmarkInfo {
        name: "c499",
        family: Family::Iscas85,
        inputs: 41,
        outputs: 32,
        gates: 202,
        authentic: false,
    },
    BenchmarkInfo {
        name: "c880",
        family: Family::Iscas85,
        inputs: 60,
        outputs: 26,
        gates: 383,
        authentic: false,
    },
    BenchmarkInfo {
        name: "c1355",
        family: Family::Iscas85,
        inputs: 41,
        outputs: 32,
        gates: 546,
        authentic: false,
    },
    BenchmarkInfo {
        name: "c1908",
        family: Family::Iscas85,
        inputs: 33,
        outputs: 25,
        gates: 880,
        authentic: false,
    },
    BenchmarkInfo {
        name: "c2670",
        family: Family::Iscas85,
        inputs: 233,
        outputs: 140,
        gates: 1193,
        authentic: false,
    },
    BenchmarkInfo {
        name: "c3540",
        family: Family::Iscas85,
        inputs: 50,
        outputs: 22,
        gates: 1669,
        authentic: false,
    },
    BenchmarkInfo {
        name: "c5315",
        family: Family::Iscas85,
        inputs: 178,
        outputs: 123,
        gates: 2307,
        authentic: false,
    },
    BenchmarkInfo {
        name: "c6288",
        family: Family::Iscas85,
        inputs: 32,
        outputs: 32,
        gates: 2416,
        authentic: false,
    },
    BenchmarkInfo {
        name: "c7552",
        family: Family::Iscas85,
        inputs: 207,
        outputs: 108,
        gates: 3512,
        authentic: false,
    },
    BenchmarkInfo {
        name: "alu2",
        family: Family::Mcnc89,
        inputs: 10,
        outputs: 6,
        gates: 335,
        authentic: false,
    },
    BenchmarkInfo {
        name: "malu4",
        family: Family::Mcnc89,
        inputs: 14,
        outputs: 8,
        gates: 100,
        authentic: false,
    },
    BenchmarkInfo {
        name: "max_flat",
        family: Family::Mcnc89,
        inputs: 32,
        outputs: 16,
        gates: 800,
        authentic: false,
    },
    BenchmarkInfo {
        name: "voter",
        family: Family::Mcnc89,
        inputs: 12,
        outputs: 1,
        gates: 600,
        authentic: false,
    },
    BenchmarkInfo {
        name: "b9",
        family: Family::Mcnc89,
        inputs: 41,
        outputs: 21,
        gates: 105,
        authentic: false,
    },
    BenchmarkInfo {
        name: "count",
        family: Family::Mcnc89,
        inputs: 35,
        outputs: 16,
        gates: 144,
        authentic: false,
    },
    BenchmarkInfo {
        name: "comp",
        family: Family::Mcnc89,
        inputs: 32,
        outputs: 3,
        gates: 110,
        authentic: false,
    },
    BenchmarkInfo {
        name: "pcler8",
        family: Family::Mcnc89,
        inputs: 27,
        outputs: 17,
        gates: 72,
        authentic: false,
    },
];

/// The subset of [`BENCHMARKS`] used in Table 2 (`c432` … `c7552`).
pub fn table2_benchmarks() -> Vec<BenchmarkInfo> {
    BENCHMARKS
        .iter()
        .filter(|b| b.family == Family::Iscas85 && b.name != "c17")
        .copied()
        .collect()
}

/// Looks up a benchmark descriptor by name.
pub fn find(name: &str) -> Option<BenchmarkInfo> {
    BENCHMARKS.iter().find(|b| b.name == name).copied()
}

/// Materializes a benchmark circuit by name.
///
/// `c17` and (under the alias `"paper_example"`) the running example of the
/// paper are authentic; every other name yields the deterministic synthetic
/// stand-in described in the module docs. Returns `None` for unknown names.
///
/// # Example
///
/// ```
/// let c432 = swact_circuit::catalog::benchmark("c432").expect("known benchmark");
/// assert_eq!(c432.num_inputs(), 36);
/// assert_eq!(c432.num_outputs(), 7);
/// ```
pub fn benchmark(name: &str) -> Option<Circuit> {
    if name == "c17" {
        return Some(c17());
    }
    if name == "paper_example" {
        return Some(paper_example());
    }
    let info = find(name)?;
    let config = GeneratorConfig {
        name: info.name,
        inputs: info.inputs,
        outputs: info.outputs,
        gates: info.gates,
        seed: seed_from_name(info.name),
        ..GeneratorConfig::default_for(info.name)
    };
    Some(generate(&config))
}

/// Deterministic 64-bit seed derived from a benchmark name (FNV-1a).
pub fn seed_from_name(name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

const C17_BENCH: &str = "\
# c17 (authentic ISCAS-85 netlist)
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
";

/// The authentic ISCAS-85 `c17` benchmark: 5 inputs, 2 outputs, 6 NAND
/// gates with reconvergent fan-out through line 11.
pub fn c17() -> Circuit {
    parse_bench("c17", C17_BENCH).expect("embedded c17 netlist is valid")
}

/// The five-gate, nine-line running example of the paper (Figure 1).
///
/// Lines 1–4 are primary inputs; the gate functions follow the paper where
/// stated (line 5 is an OR gate — §4 quantifies `P(X5 | X1, X2)` for OR) and
/// are chosen to exercise a mix of kinds elsewhere. The LIDAG of this
/// circuit factorizes exactly as the paper's Eq. 7:
/// `P(x9|x7,x8)·P(x8|x4)·P(x7|x5,x6)·P(x6|x3,x4)·P(x5|x1,x2)·P(x4)…P(x1)`.
///
/// # Example
///
/// ```
/// let c = swact_circuit::catalog::paper_example();
/// assert_eq!(c.num_lines(), 9);
/// assert_eq!(c.num_gates(), 5);
/// ```
pub fn paper_example() -> Circuit {
    let mut b = CircuitBuilder::new("paper_example");
    for name in ["1", "2", "3", "4"] {
        b.input(name).expect("fresh name");
    }
    b.gate("5", GateKind::Or, &["1", "2"]).expect("fresh");
    b.gate("6", GateKind::And, &["3", "4"]).expect("fresh");
    b.gate("7", GateKind::Nand, &["5", "6"]).expect("fresh");
    b.gate("8", GateKind::Not, &["4"]).expect("fresh");
    b.gate("9", GateKind::Nor, &["7", "8"]).expect("fresh");
    b.output("9").expect("declared");
    b.finish().expect("example circuit is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c17_is_authentic_shape() {
        let c = c17();
        assert_eq!((c.num_inputs(), c.num_outputs(), c.num_gates()), (5, 2, 6));
        // Reconvergent fanout: line 11 feeds both 16 and 19.
        let l11 = c.find_line("11").unwrap();
        assert_eq!(c.fanout_counts()[l11.index()], 2);
    }

    #[test]
    fn c17_function_spot_checks() {
        // c17: 22 = NAND(NAND(1,3), NAND(2, NAND(3,6)))
        let c = c17();
        let order = c.topo_order();
        let eval = |assign: [bool; 5]| -> (bool, bool) {
            let mut values = vec![false; c.num_lines()];
            for (i, &pi) in c.inputs().iter().enumerate() {
                values[pi.index()] = assign[i];
            }
            for &line in &order {
                if let Some(g) = c.gate(line) {
                    values[line.index()] = g.kind.eval(g.inputs.iter().map(|&l| values[l.index()]));
                }
            }
            (
                values[c.outputs()[0].index()],
                values[c.outputs()[1].index()],
            )
        };
        // All zeros: every NAND of zeros is 1, so 22 = NAND(1,1) = 0 at the
        // top? Work it out: 10=NAND(0,0)=1, 11=1, 16=NAND(0,1)=1,
        // 19=NAND(1,0)=1, 22=NAND(1,1)=0, 23=NAND(1,1)=0.
        assert_eq!(eval([false; 5]), (false, false));
        // All ones: 10=NAND(1,1)=0, 11=0, 16=NAND(1,0)=1, 19=NAND(0,1)=1,
        // 22=NAND(0,1)=1, 23=NAND(1,1)=0.
        assert_eq!(eval([true; 5]), (true, false));
    }

    #[test]
    fn paper_example_matches_eq7_structure() {
        let c = paper_example();
        let parents = |name: &str| -> Vec<String> {
            let l = c.find_line(name).unwrap();
            c.gate(l)
                .map(|g| {
                    g.inputs
                        .iter()
                        .map(|&i| c.line_name(i).to_string())
                        .collect()
                })
                .unwrap_or_default()
        };
        assert_eq!(parents("5"), ["1", "2"]);
        assert_eq!(parents("6"), ["3", "4"]);
        assert_eq!(parents("7"), ["5", "6"]);
        assert_eq!(parents("8"), ["4"]);
        assert_eq!(parents("9"), ["7", "8"]);
    }

    #[test]
    fn all_benchmarks_materialize_with_published_interface() {
        for info in BENCHMARKS {
            let c = benchmark(info.name).unwrap();
            assert_eq!(c.num_inputs(), info.inputs, "{} inputs", info.name);
            assert_eq!(c.num_outputs(), info.outputs, "{} outputs", info.name);
            if info.authentic {
                assert_eq!(c.num_gates(), info.gates, "{} gates", info.name);
            } else {
                // Synthetic stand-ins may add a few collector gates while
                // matching the primary-output count.
                let slack = info.gates / 5 + 8;
                assert!(
                    c.num_gates() >= info.gates && c.num_gates() <= info.gates + slack,
                    "{}: {} gates vs target {}",
                    info.name,
                    c.num_gates(),
                    info.gates
                );
            }
        }
    }

    #[test]
    fn benchmark_generation_is_deterministic() {
        let a = benchmark("c432").unwrap();
        let b = benchmark("c432").unwrap();
        assert_eq!(a.num_lines(), b.num_lines());
        for line in a.line_ids() {
            assert_eq!(a.line_name(line), b.line_name(line));
            assert_eq!(a.gate(line), b.gate(line));
        }
    }

    #[test]
    fn unknown_benchmark_is_none() {
        assert!(benchmark("c9999").is_none());
        assert!(find("nope").is_none());
    }

    #[test]
    fn table2_subset() {
        let t2 = table2_benchmarks();
        assert_eq!(t2.len(), 10);
        assert!(t2.iter().all(|b| b.name.starts_with('c')));
        assert!(!t2.iter().any(|b| b.name == "c17"));
    }
}
