//! Topological analysis of [`Circuit`]s: evaluation order, logic levels,
//! fan-out, and transitive fan-in cones.
//!
//! All functions here run in `O(lines + edges)`.

use crate::{Circuit, Driver, LineId};

impl Circuit {
    /// Lines in a topological order: every gate appears after all of its
    /// inputs. Primary inputs come first (they have no predecessors).
    ///
    /// The order is deterministic (Kahn's algorithm with a FIFO over
    /// ascending ids).
    ///
    /// # Example
    ///
    /// ```
    /// use swact_circuit::catalog;
    /// let c = catalog::paper_example();
    /// let order = c.topo_order();
    /// let pos: Vec<usize> = {
    ///     let mut p = vec![0; c.num_lines()];
    ///     for (i, l) in order.iter().enumerate() { p[l.index()] = i; }
    ///     p
    /// };
    /// for line in c.gate_lines() {
    ///     for input in &c.gate(line).unwrap().inputs {
    ///         assert!(pos[input.index()] < pos[line.index()]);
    ///     }
    /// }
    /// ```
    pub fn topo_order(&self) -> Vec<LineId> {
        let n = self.num_lines();
        let mut indegree = vec![0usize; n];
        for line in self.line_ids() {
            if let Driver::Gate(g) = self.driver(line) {
                indegree[line.index()] = g.inputs.len();
            }
        }
        let fanouts = self.fanouts();
        let mut queue: std::collections::VecDeque<LineId> = self
            .line_ids()
            .filter(|l| indegree[l.index()] == 0)
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(line) = queue.pop_front() {
            order.push(line);
            for &succ in &fanouts[line.index()] {
                indegree[succ.index()] -= 1;
                if indegree[succ.index()] == 0 {
                    queue.push_back(succ);
                }
            }
        }
        debug_assert_eq!(order.len(), n, "circuit validated acyclic");
        order
    }

    /// For every line, the list of gate-output lines that consume it.
    ///
    /// A line feeding the same gate twice appears twice in that gate's
    /// entry, so `fanouts()[l].len()` counts *connections*, not distinct
    /// consumers.
    pub fn fanouts(&self) -> Vec<Vec<LineId>> {
        let mut fanouts = vec![Vec::new(); self.num_lines()];
        for line in self.line_ids() {
            if let Driver::Gate(g) = self.driver(line) {
                for &input in &g.inputs {
                    fanouts[input.index()].push(line);
                }
            }
        }
        fanouts
    }

    /// Fan-out connection count per line.
    pub fn fanout_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_lines()];
        for line in self.line_ids() {
            if let Driver::Gate(g) = self.driver(line) {
                for &input in &g.inputs {
                    counts[input.index()] += 1;
                }
            }
        }
        counts
    }

    /// Logic level of every line: 0 for primary inputs, otherwise
    /// `1 + max(level of inputs)`.
    pub fn levels(&self) -> Vec<usize> {
        let mut levels = vec![0usize; self.num_lines()];
        for &line in &self.topo_order() {
            if let Driver::Gate(g) = self.driver(line) {
                levels[line.index()] = 1 + g
                    .inputs
                    .iter()
                    .map(|i| levels[i.index()])
                    .max()
                    .unwrap_or(0);
            }
        }
        levels
    }

    /// The transitive fan-in cone of `roots`: every line on which any root
    /// combinationally depends, including the roots themselves. Returned in
    /// ascending id order.
    pub fn fanin_cone(&self, roots: &[LineId]) -> Vec<LineId> {
        let mut in_cone = vec![false; self.num_lines()];
        let mut stack: Vec<LineId> = roots.to_vec();
        while let Some(line) = stack.pop() {
            if std::mem::replace(&mut in_cone[line.index()], true) {
                continue;
            }
            if let Driver::Gate(g) = self.driver(line) {
                stack.extend(g.inputs.iter().copied());
            }
        }
        self.line_ids().filter(|l| in_cone[l.index()]).collect()
    }

    /// Primary-input support of `roots`: the primary inputs inside
    /// [`fanin_cone`](Circuit::fanin_cone).
    pub fn support(&self, roots: &[LineId]) -> Vec<LineId> {
        self.fanin_cone(roots)
            .into_iter()
            .filter(|&l| self.is_input(l))
            .collect()
    }

    /// Lines with no fan-out (dead logic plus, typically, the primary
    /// outputs).
    pub fn sinks(&self) -> Vec<LineId> {
        let counts = self.fanout_counts();
        self.line_ids().filter(|l| counts[l.index()] == 0).collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::{catalog, CircuitBuilder, GateKind};

    #[test]
    fn topo_order_respects_dependencies_on_c17() {
        let c = catalog::c17();
        let order = c.topo_order();
        assert_eq!(order.len(), c.num_lines());
        let mut pos = vec![usize::MAX; c.num_lines()];
        for (i, l) in order.iter().enumerate() {
            pos[l.index()] = i;
        }
        for line in c.gate_lines() {
            for input in &c.gate(line).unwrap().inputs {
                assert!(pos[input.index()] < pos[line.index()]);
            }
        }
    }

    #[test]
    fn levels_of_paper_example() {
        // Figure 1: lines 1-4 are inputs (level 0); gates 5,6,8 are level 1
        // (8 is driven only by input 4); 7 is level 2; 9 is level 3.
        let c = catalog::paper_example();
        let levels = c.levels();
        let level_of = |name: &str| levels[c.find_line(name).unwrap().index()];
        assert_eq!(level_of("1"), 0);
        assert_eq!(level_of("5"), 1);
        assert_eq!(level_of("6"), 1);
        assert_eq!(level_of("8"), 1);
        assert_eq!(level_of("7"), 2);
        assert_eq!(level_of("9"), 3);
    }

    #[test]
    fn cone_and_support() {
        let c = catalog::paper_example();
        let l7 = c.find_line("7").unwrap();
        let cone = c.fanin_cone(&[l7]);
        let names: Vec<&str> = cone.iter().map(|&l| c.line_name(l)).collect();
        assert_eq!(names, ["1", "2", "3", "4", "5", "6", "7"]);
        let support = c.support(&[l7]);
        assert_eq!(support.len(), 4);
        assert!(support.iter().all(|&l| c.is_input(l)));
    }

    #[test]
    fn fanout_counts_duplicate_connections() {
        let mut b = CircuitBuilder::new("dupfan");
        b.input("a").unwrap();
        b.gate("y", GateKind::Xor, &["a", "a"]).unwrap();
        b.output("y").unwrap();
        let c = b.finish().unwrap();
        let a = c.find_line("a").unwrap();
        assert_eq!(c.fanout_counts()[a.index()], 2);
    }

    #[test]
    fn sinks_are_outputs_in_clean_circuits() {
        let c = catalog::c17();
        let sinks = c.sinks();
        assert_eq!(sinks.len(), 2);
        assert!(sinks.iter().all(|&l| c.is_output(l)));
    }
}
