use std::collections::HashMap;
use std::fmt;

use crate::{CircuitError, GateKind};

/// Identifier of a signal line (net) within one [`Circuit`].
///
/// Line ids are dense: a circuit with *n* lines uses ids `0..n`, in
/// declaration order (all primary inputs first if built through
/// [`CircuitBuilder`], but this is not required). Ids from one circuit are
/// meaningless in another.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LineId(pub(crate) u32);

impl LineId {
    /// The dense index of this line, suitable for indexing per-line arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `LineId` from a dense index.
    ///
    /// Callers are responsible for the index being in range for the circuit
    /// the id will be used with; out-of-range ids cause panics on use, not
    /// undefined behaviour.
    pub fn from_index(index: usize) -> LineId {
        LineId(u32::try_from(index).expect("line index exceeds u32 range"))
    }
}

impl fmt::Display for LineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// A logic gate: a [`GateKind`] applied to an ordered list of input lines.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Gate {
    /// The Boolean function.
    pub kind: GateKind,
    /// Input lines, in evaluation order.
    pub inputs: Vec<LineId>,
}

/// What drives a line: a primary input pin or a gate.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Driver {
    /// The line is a primary input.
    Input,
    /// The line is the output of the contained gate.
    Gate(Gate),
}

#[derive(Debug, Clone)]
struct Line {
    name: String,
    driver: Driver,
}

/// An immutable, validated combinational netlist.
///
/// Every line is driven by exactly one primary input or gate. The structure
/// is guaranteed acyclic and fully connected (every referenced line exists);
/// these invariants are established by [`CircuitBuilder::finish`] or
/// [`parse::parse_bench`] and hold for the lifetime of the value.
///
/// [`parse::parse_bench`]: crate::parse::parse_bench
///
/// # Example
///
/// ```
/// use swact_circuit::catalog;
///
/// let c17 = catalog::c17();
/// assert_eq!(c17.num_inputs(), 5);
/// assert_eq!(c17.num_gates(), 6);
/// let order = c17.topo_order();
/// assert_eq!(order.len(), c17.num_lines());
/// ```
#[derive(Debug, Clone)]
pub struct Circuit {
    name: String,
    lines: Vec<Line>,
    inputs: Vec<LineId>,
    outputs: Vec<LineId>,
    by_name: HashMap<String, LineId>,
}

/// Summary statistics of a circuit, as produced by [`Circuit::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CircuitStats {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Number of gates (lines that are not primary inputs).
    pub gates: usize,
    /// Maximum gate fan-in.
    pub max_fanin: usize,
    /// Maximum line fan-out.
    pub max_fanout: usize,
    /// Number of logic levels (longest input→output path, in gates).
    pub depth: usize,
}

impl Circuit {
    /// The circuit's name (benchmark name or builder-supplied).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total number of lines (primary inputs + gate outputs).
    pub fn num_lines(&self) -> usize {
        self.lines.len()
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Number of gates (= lines that are not primary inputs).
    pub fn num_gates(&self) -> usize {
        self.lines.len() - self.inputs.len()
    }

    /// Primary input lines, in declaration order.
    pub fn inputs(&self) -> &[LineId] {
        &self.inputs
    }

    /// Primary output lines, in declaration order.
    pub fn outputs(&self) -> &[LineId] {
        &self.outputs
    }

    /// The name of a line.
    ///
    /// # Panics
    ///
    /// Panics if `line` is out of range for this circuit.
    pub fn line_name(&self, line: LineId) -> &str {
        &self.lines[line.index()].name
    }

    /// The driver of a line.
    ///
    /// # Panics
    ///
    /// Panics if `line` is out of range for this circuit.
    pub fn driver(&self, line: LineId) -> &Driver {
        &self.lines[line.index()].driver
    }

    /// The gate driving `line`, or `None` when `line` is a primary input.
    pub fn gate(&self, line: LineId) -> Option<&Gate> {
        match &self.lines[line.index()].driver {
            Driver::Input => None,
            Driver::Gate(g) => Some(g),
        }
    }

    /// Whether `line` is a primary input.
    pub fn is_input(&self, line: LineId) -> bool {
        matches!(self.lines[line.index()].driver, Driver::Input)
    }

    /// Whether `line` is a primary output.
    pub fn is_output(&self, line: LineId) -> bool {
        self.outputs.contains(&line)
    }

    /// Looks a line up by name.
    pub fn find_line(&self, name: &str) -> Option<LineId> {
        self.by_name.get(name).copied()
    }

    /// Iterates over all line ids, `0..num_lines()`.
    pub fn line_ids(&self) -> impl ExactSizeIterator<Item = LineId> + Clone {
        (0..self.lines.len() as u32).map(LineId)
    }

    /// Iterates over the ids of lines driven by gates (i.e. non-inputs).
    pub fn gate_lines(&self) -> impl Iterator<Item = LineId> + '_ {
        self.line_ids().filter(|&l| !self.is_input(l))
    }

    /// Computes summary statistics.
    pub fn stats(&self) -> CircuitStats {
        let fanout = self.fanout_counts();
        let max_fanin = self
            .gate_lines()
            .map(|l| self.gate(l).map_or(0, |g| g.inputs.len()))
            .max()
            .unwrap_or(0);
        CircuitStats {
            inputs: self.num_inputs(),
            outputs: self.num_outputs(),
            gates: self.num_gates(),
            max_fanin,
            max_fanout: fanout.into_iter().max().unwrap_or(0),
            depth: self.levels().into_iter().max().unwrap_or(0),
        }
    }

    pub(crate) fn from_parts(
        name: String,
        lines: Vec<(String, Driver)>,
        inputs: Vec<LineId>,
        outputs: Vec<LineId>,
    ) -> Result<Circuit, CircuitError> {
        let mut by_name = HashMap::with_capacity(lines.len());
        for (i, (line_name, _)) in lines.iter().enumerate() {
            if by_name
                .insert(line_name.clone(), LineId(i as u32))
                .is_some()
            {
                return Err(CircuitError::DuplicateLine(line_name.clone()));
            }
        }
        let circuit = Circuit {
            name,
            lines: lines
                .into_iter()
                .map(|(name, driver)| Line { name, driver })
                .collect(),
            inputs,
            outputs,
            by_name,
        };
        circuit.validate()?;
        Ok(circuit)
    }

    fn validate(&self) -> Result<(), CircuitError> {
        if self.inputs.is_empty() {
            return Err(CircuitError::NoInputs);
        }
        if self.outputs.is_empty() {
            return Err(CircuitError::NoOutputs);
        }
        let n = self.lines.len();
        for (i, line) in self.lines.iter().enumerate() {
            if let Driver::Gate(g) = &line.driver {
                if !g.kind.arity_ok(g.inputs.len()) {
                    if g.inputs.is_empty() && g.kind.fixed_arity() != Some(0) {
                        return Err(CircuitError::EmptyGate(line.name.clone()));
                    }
                    return Err(CircuitError::ArityMismatch {
                        line: line.name.clone(),
                        got: g.inputs.len(),
                    });
                }
                for &input in &g.inputs {
                    if input.index() >= n {
                        return Err(CircuitError::UnknownLine(format!(
                            "{input} (input of `{}`)",
                            line.name
                        )));
                    }
                }
            }
            let _ = i;
        }
        // Cycle check via iterative DFS with colors.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut color = vec![Color::White; n];
        for start in 0..n {
            if color[start] != Color::White {
                continue;
            }
            // Stack of (node, next-child-index).
            let mut stack = vec![(start, 0usize)];
            color[start] = Color::Gray;
            while let Some(&mut (node, ref mut child)) = stack.last_mut() {
                let children: &[LineId] = match &self.lines[node].driver {
                    Driver::Input => &[],
                    Driver::Gate(g) => &g.inputs,
                };
                if *child < children.len() {
                    let next = children[*child].index();
                    *child += 1;
                    match color[next] {
                        Color::White => {
                            color[next] = Color::Gray;
                            stack.push((next, 0));
                        }
                        Color::Gray => {
                            return Err(CircuitError::Cycle(self.lines[next].name.clone()));
                        }
                        Color::Black => {}
                    }
                } else {
                    color[node] = Color::Black;
                    stack.pop();
                }
            }
        }
        Ok(())
    }
}

/// Incremental builder for [`Circuit`], addressing lines by name.
///
/// Gates may reference lines that have not been declared yet ("forward
/// references" are resolved at [`finish`](CircuitBuilder::finish)); this
/// matches `.bench` files, which list gates in arbitrary order.
///
/// # Example
///
/// ```
/// use swact_circuit::{CircuitBuilder, GateKind};
///
/// # fn main() -> Result<(), swact_circuit::CircuitError> {
/// let mut b = CircuitBuilder::new("mux");
/// b.input("sel")?;
/// b.input("a")?;
/// b.input("b")?;
/// b.gate("nsel", GateKind::Not, &["sel"])?;
/// b.gate("t0", GateKind::And, &["a", "nsel"])?;
/// b.gate("t1", GateKind::And, &["b", "sel"])?;
/// b.gate("y", GateKind::Or, &["t0", "t1"])?;
/// b.output("y")?;
/// let mux = b.finish()?;
/// assert_eq!(mux.num_gates(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CircuitBuilder {
    name: String,
    lines: Vec<(String, PendingDriver)>,
    by_name: HashMap<String, LineId>,
    inputs: Vec<LineId>,
    outputs: Vec<String>,
}

#[derive(Debug, Clone)]
enum PendingDriver {
    Input,
    Gate(GateKind, Vec<String>),
}

impl CircuitBuilder {
    /// Starts a new, empty circuit with the given name.
    pub fn new(name: impl Into<String>) -> CircuitBuilder {
        CircuitBuilder {
            name: name.into(),
            lines: Vec::new(),
            by_name: HashMap::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
        }
    }

    fn declare(&mut self, name: &str, driver: PendingDriver) -> Result<LineId, CircuitError> {
        if self.by_name.contains_key(name) {
            return Err(CircuitError::DuplicateLine(name.to_string()));
        }
        let id = LineId(self.lines.len() as u32);
        self.lines.push((name.to_string(), driver));
        self.by_name.insert(name.to_string(), id);
        Ok(id)
    }

    /// Declares a primary input line.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::DuplicateLine`] if the name is taken.
    pub fn input(&mut self, name: &str) -> Result<LineId, CircuitError> {
        let id = self.declare(name, PendingDriver::Input)?;
        self.inputs.push(id);
        Ok(id)
    }

    /// Declares a gate with output line `name`, function `kind`, and the
    /// named inputs. Inputs may be declared later.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::DuplicateLine`] if the output name is taken,
    /// or an arity error for invalid input counts.
    pub fn gate(
        &mut self,
        name: &str,
        kind: GateKind,
        inputs: &[&str],
    ) -> Result<LineId, CircuitError> {
        if !kind.arity_ok(inputs.len()) {
            if inputs.is_empty() && kind.fixed_arity() != Some(0) {
                return Err(CircuitError::EmptyGate(name.to_string()));
            }
            return Err(CircuitError::ArityMismatch {
                line: name.to_string(),
                got: inputs.len(),
            });
        }
        self.declare(
            name,
            PendingDriver::Gate(kind, inputs.iter().map(|s| s.to_string()).collect()),
        )
    }

    /// Marks a named line as a primary output. The line may be declared
    /// later; existence is checked by [`finish`](CircuitBuilder::finish).
    pub fn output(&mut self, name: &str) -> Result<(), CircuitError> {
        self.outputs.push(name.to_string());
        Ok(())
    }

    /// Resolves names, validates the structure, and produces the [`Circuit`].
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownLine`] for dangling references,
    /// [`CircuitError::Cycle`] for combinational loops, and
    /// [`CircuitError::NoInputs`] / [`CircuitError::NoOutputs`] for empty
    /// interfaces.
    pub fn finish(self) -> Result<Circuit, CircuitError> {
        let mut lines = Vec::with_capacity(self.lines.len());
        for (name, pending) in &self.lines {
            let driver = match pending {
                PendingDriver::Input => Driver::Input,
                PendingDriver::Gate(kind, input_names) => {
                    let mut ids = Vec::with_capacity(input_names.len());
                    for input_name in input_names {
                        let id = self
                            .by_name
                            .get(input_name)
                            .copied()
                            .ok_or_else(|| CircuitError::UnknownLine(input_name.clone()))?;
                        ids.push(id);
                    }
                    Driver::Gate(Gate {
                        kind: *kind,
                        inputs: ids,
                    })
                }
            };
            lines.push((name.clone(), driver));
        }
        let mut outputs = Vec::with_capacity(self.outputs.len());
        for output_name in &self.outputs {
            let id = self
                .by_name
                .get(output_name)
                .copied()
                .ok_or_else(|| CircuitError::UnknownLine(output_name.clone()))?;
            outputs.push(id);
        }
        Circuit::from_parts(self.name, lines, self.inputs, outputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Circuit {
        let mut b = CircuitBuilder::new("tiny");
        b.input("a").unwrap();
        b.input("b").unwrap();
        b.gate("y", GateKind::And, &["a", "b"]).unwrap();
        b.output("y").unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn builder_produces_valid_circuit() {
        let c = tiny();
        assert_eq!(c.name(), "tiny");
        assert_eq!(c.num_lines(), 3);
        assert_eq!(c.num_gates(), 1);
        let y = c.find_line("y").unwrap();
        assert!(c.is_output(y));
        assert!(!c.is_input(y));
        let g = c.gate(y).unwrap();
        assert_eq!(g.kind, GateKind::And);
        assert_eq!(g.inputs.len(), 2);
    }

    #[test]
    fn duplicate_line_rejected() {
        let mut b = CircuitBuilder::new("dup");
        b.input("a").unwrap();
        assert_eq!(
            b.input("a").unwrap_err(),
            CircuitError::DuplicateLine("a".into())
        );
    }

    #[test]
    fn unknown_reference_rejected_at_finish() {
        let mut b = CircuitBuilder::new("dangling");
        b.input("a").unwrap();
        b.gate("y", GateKind::Not, &["ghost"]).unwrap();
        b.output("y").unwrap();
        assert_eq!(
            b.finish().unwrap_err(),
            CircuitError::UnknownLine("ghost".into())
        );
    }

    #[test]
    fn forward_references_allowed() {
        let mut b = CircuitBuilder::new("fwd");
        b.gate("y", GateKind::Not, &["a"]).unwrap();
        b.input("a").unwrap();
        b.output("y").unwrap();
        assert!(b.finish().is_ok());
    }

    #[test]
    fn cycle_rejected() {
        let mut b = CircuitBuilder::new("loop");
        b.input("a").unwrap();
        b.gate("x", GateKind::And, &["a", "y"]).unwrap();
        b.gate("y", GateKind::Not, &["x"]).unwrap();
        b.output("y").unwrap();
        assert!(matches!(b.finish().unwrap_err(), CircuitError::Cycle(_)));
    }

    #[test]
    fn self_loop_rejected() {
        let mut b = CircuitBuilder::new("selfloop");
        b.input("a").unwrap();
        b.gate("y", GateKind::And, &["a", "y"]).unwrap();
        b.output("y").unwrap();
        assert!(matches!(b.finish().unwrap_err(), CircuitError::Cycle(_)));
    }

    #[test]
    fn empty_interface_rejected() {
        let mut b = CircuitBuilder::new("no_out");
        b.input("a").unwrap();
        assert_eq!(b.finish().unwrap_err(), CircuitError::NoOutputs);

        let mut b = CircuitBuilder::new("no_in");
        b.gate("k", GateKind::Const1, &[]).unwrap();
        b.output("k").unwrap();
        assert_eq!(b.finish().unwrap_err(), CircuitError::NoInputs);
    }

    #[test]
    fn arity_checked_in_builder() {
        let mut b = CircuitBuilder::new("bad");
        b.input("a").unwrap();
        b.input("b").unwrap();
        assert!(matches!(
            b.gate("y", GateKind::Not, &["a", "b"]).unwrap_err(),
            CircuitError::ArityMismatch { .. }
        ));
        assert!(matches!(
            b.gate("z", GateKind::And, &[]).unwrap_err(),
            CircuitError::EmptyGate(_)
        ));
    }

    #[test]
    fn line_id_index_round_trip() {
        let id = LineId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.to_string(), "L42");
    }

    #[test]
    fn stats_of_tiny() {
        let s = tiny().stats();
        assert_eq!(
            s,
            CircuitStats {
                inputs: 2,
                outputs: 1,
                gates: 1,
                max_fanin: 2,
                max_fanout: 1,
                depth: 1,
            }
        );
    }

    #[test]
    fn circuit_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Circuit>();
    }
}
