//! Gate-level combinational netlists for switching-activity analysis.
//!
//! This crate is the structural substrate of the `swact` workspace. It
//! provides:
//!
//! * [`Circuit`] — an immutable-after-build netlist of [`Gate`]s over named
//!   signal [`LineId`]s, with structural validation (acyclicity, defined
//!   drivers) enforced at construction time;
//! * [`CircuitBuilder`] — the ergonomic way to assemble a circuit by name;
//! * an ISCAS-85 `.bench` [parser](parse::parse_bench) and
//!   [writer](write::to_bench);
//! * [topological analysis](topo) — evaluation order, logic levels, fanout,
//!   transitive fanin cones;
//! * [fan-in decomposition](decompose) — rewriting wide gates into trees of
//!   two-input gates so downstream probabilistic models stay tractable;
//! * [benchmark circuits](catalog) — the real ISCAS-85 `c17`, the running
//!   five-gate example from Bhanja & Ranganathan (DAC 2001), and
//!   deterministic [synthetic stand-ins](benchgen) for the remaining
//!   ISCAS-85 / MCNC-89 benchmarks evaluated in that paper.
//!
//! # Example
//!
//! ```
//! use swact_circuit::{CircuitBuilder, GateKind};
//!
//! # fn main() -> Result<(), swact_circuit::CircuitError> {
//! let mut b = CircuitBuilder::new("half_adder");
//! b.input("a")?;
//! b.input("b")?;
//! b.gate("sum", GateKind::Xor, &["a", "b"])?;
//! b.gate("carry", GateKind::And, &["a", "b"])?;
//! b.output("sum")?;
//! b.output("carry")?;
//! let circuit = b.finish()?;
//!
//! assert_eq!(circuit.num_inputs(), 2);
//! assert_eq!(circuit.num_gates(), 2);
//! assert_eq!(circuit.num_outputs(), 2);
//! # Ok(())
//! # }
//! ```

pub mod benchgen;
pub mod blif;
pub mod catalog;
pub mod decompose;
mod error;
mod gate;
mod netlist;
pub mod parse;
pub mod sequential;
pub mod topo;
pub mod write;

pub use error::CircuitError;
pub use gate::GateKind;
pub use netlist::{Circuit, CircuitBuilder, CircuitStats, Driver, Gate, LineId};
