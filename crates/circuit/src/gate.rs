use std::fmt;
use std::str::FromStr;

/// The Boolean function computed by a gate.
///
/// All multi-input kinds ([`And`], [`Nand`], [`Or`], [`Nor`], [`Xor`],
/// [`Xnor`]) accept any fan-in ≥ 1; parity gates reduce left to right.
/// [`Not`] and [`Buf`] are strictly unary; [`Const0`] / [`Const1`] are
/// nullary.
///
/// # Example
///
/// ```
/// use swact_circuit::GateKind;
///
/// assert!(GateKind::Nand.eval([true, false]));
/// assert!(!GateKind::Nand.eval([true, true]));
/// assert!(GateKind::Xor.eval([true, true, true]));
/// ```
///
/// [`And`]: GateKind::And
/// [`Nand`]: GateKind::Nand
/// [`Or`]: GateKind::Or
/// [`Nor`]: GateKind::Nor
/// [`Xor`]: GateKind::Xor
/// [`Xnor`]: GateKind::Xnor
/// [`Not`]: GateKind::Not
/// [`Buf`]: GateKind::Buf
/// [`Const0`]: GateKind::Const0
/// [`Const1`]: GateKind::Const1
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GateKind {
    /// Logical conjunction.
    And,
    /// Negated conjunction.
    Nand,
    /// Logical disjunction.
    Or,
    /// Negated disjunction.
    Nor,
    /// Odd parity.
    Xor,
    /// Even parity.
    Xnor,
    /// Unary negation.
    Not,
    /// Unary identity (buffer).
    Buf,
    /// Constant logic 0 (no inputs).
    Const0,
    /// Constant logic 1 (no inputs).
    Const1,
}

impl GateKind {
    /// All gate kinds, in declaration order. Useful for exhaustive tests.
    pub const ALL: [GateKind; 10] = [
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Not,
        GateKind::Buf,
        GateKind::Const0,
        GateKind::Const1,
    ];

    /// Evaluates the gate over Boolean inputs.
    ///
    /// # Panics
    ///
    /// Panics if the number of inputs is invalid for the kind (zero for
    /// multi-input kinds, not exactly one for [`GateKind::Not`] /
    /// [`GateKind::Buf`], nonzero for constants). Arity is validated when
    /// circuits are built, so evaluation over a valid [`Circuit`] never
    /// panics.
    ///
    /// [`Circuit`]: crate::Circuit
    pub fn eval<I: IntoIterator<Item = bool>>(self, inputs: I) -> bool {
        let mut it = inputs.into_iter();
        match self {
            GateKind::And => it.all(|b| b),
            GateKind::Nand => !it.all(|b| b),
            GateKind::Or => it.any(|b| b),
            GateKind::Nor => !it.any(|b| b),
            GateKind::Xor => it.fold(false, |acc, b| acc ^ b),
            GateKind::Xnor => !it.fold(false, |acc, b| acc ^ b),
            GateKind::Not => {
                let v = it.next().expect("NOT gate requires one input");
                assert!(it.next().is_none(), "NOT gate requires exactly one input");
                !v
            }
            GateKind::Buf => {
                let v = it.next().expect("BUF gate requires one input");
                assert!(it.next().is_none(), "BUF gate requires exactly one input");
                v
            }
            GateKind::Const0 => false,
            GateKind::Const1 => true,
        }
    }

    /// Evaluates the gate over 64 parallel bit-sliced input words.
    ///
    /// Bit *i* of the result is the gate output for the *i*-th of 64
    /// simultaneously simulated vectors. This is the kernel of the
    /// bit-parallel simulator in `swact-sim`.
    ///
    /// # Panics
    ///
    /// Same arity conditions as [`GateKind::eval`].
    pub fn eval_words(self, inputs: &[u64]) -> u64 {
        match self {
            GateKind::And => inputs.iter().fold(!0u64, |acc, w| acc & w),
            GateKind::Nand => !inputs.iter().fold(!0u64, |acc, w| acc & w),
            GateKind::Or => inputs.iter().fold(0u64, |acc, w| acc | w),
            GateKind::Nor => !inputs.iter().fold(0u64, |acc, w| acc | w),
            GateKind::Xor => inputs.iter().fold(0u64, |acc, w| acc ^ w),
            GateKind::Xnor => !inputs.iter().fold(0u64, |acc, w| acc ^ w),
            GateKind::Not => {
                assert_eq!(inputs.len(), 1, "NOT gate requires exactly one input");
                !inputs[0]
            }
            GateKind::Buf => {
                assert_eq!(inputs.len(), 1, "BUF gate requires exactly one input");
                inputs[0]
            }
            GateKind::Const0 => 0,
            GateKind::Const1 => !0,
        }
    }

    /// Whether this kind accepts an arbitrary fan-in (≥ 1).
    pub fn is_multi_input(self) -> bool {
        matches!(
            self,
            GateKind::And
                | GateKind::Nand
                | GateKind::Or
                | GateKind::Nor
                | GateKind::Xor
                | GateKind::Xnor
        )
    }

    /// Whether the gate is an inverting form (`NAND`, `NOR`, `XNOR`, `NOT`).
    pub fn is_inverting(self) -> bool {
        matches!(
            self,
            GateKind::Nand | GateKind::Nor | GateKind::Xnor | GateKind::Not
        )
    }

    /// The non-inverting gate whose output, negated, equals this gate
    /// (`NAND` → `AND`, …). Non-inverting kinds return themselves.
    ///
    /// Used by fan-in decomposition: a wide inverting gate splits into a
    /// tree of its base kind with a final inverting stage.
    pub fn base(self) -> GateKind {
        match self {
            GateKind::Nand => GateKind::And,
            GateKind::Nor => GateKind::Or,
            GateKind::Xnor => GateKind::Xor,
            GateKind::Not => GateKind::Buf,
            other => other,
        }
    }

    /// Exact number of inputs required, or `None` when any fan-in ≥ 1 works.
    pub fn fixed_arity(self) -> Option<usize> {
        match self {
            GateKind::Not | GateKind::Buf => Some(1),
            GateKind::Const0 | GateKind::Const1 => Some(0),
            _ => None,
        }
    }

    /// Validates that `arity` inputs is acceptable for this kind.
    pub fn arity_ok(self, arity: usize) -> bool {
        match self.fixed_arity() {
            Some(required) => arity == required,
            None => arity >= 1,
        }
    }

    /// The canonical upper-case mnemonic used in `.bench` files.
    pub fn mnemonic(self) -> &'static str {
        match self {
            GateKind::And => "AND",
            GateKind::Nand => "NAND",
            GateKind::Or => "OR",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
            GateKind::Not => "NOT",
            GateKind::Buf => "BUF",
            GateKind::Const0 => "CONST0",
            GateKind::Const1 => "CONST1",
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Error returned when parsing a gate mnemonic fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseGateKindError(pub(crate) String);

impl fmt::Display for ParseGateKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown gate kind `{}`", self.0)
    }
}

impl std::error::Error for ParseGateKindError {}

impl FromStr for GateKind {
    type Err = ParseGateKindError;

    /// Parses a `.bench` mnemonic, case-insensitively. `BUFF` (the ISCAS
    /// spelling) is accepted as an alias for `BUF`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "AND" => Ok(GateKind::And),
            "NAND" => Ok(GateKind::Nand),
            "OR" => Ok(GateKind::Or),
            "NOR" => Ok(GateKind::Nor),
            "XOR" => Ok(GateKind::Xor),
            "XNOR" => Ok(GateKind::Xnor),
            "NOT" | "INV" => Ok(GateKind::Not),
            "BUF" | "BUFF" => Ok(GateKind::Buf),
            "CONST0" => Ok(GateKind::Const0),
            "CONST1" => Ok(GateKind::Const1),
            other => Err(ParseGateKindError(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_input_truth_tables() {
        let cases: [(GateKind, [bool; 4]); 6] = [
            (GateKind::And, [false, false, false, true]),
            (GateKind::Nand, [true, true, true, false]),
            (GateKind::Or, [false, true, true, true]),
            (GateKind::Nor, [true, false, false, false]),
            (GateKind::Xor, [false, true, true, false]),
            (GateKind::Xnor, [true, false, false, true]),
        ];
        for (kind, expect) in cases {
            for (i, want) in expect.iter().enumerate() {
                let a = i & 1 != 0;
                let b = i & 2 != 0;
                assert_eq!(kind.eval([b, a]), *want, "{kind} on ({b},{a})");
            }
        }
    }

    #[test]
    fn unary_gates() {
        assert!(GateKind::Not.eval([false]));
        assert!(!GateKind::Not.eval([true]));
        assert!(GateKind::Buf.eval([true]));
        assert!(!GateKind::Buf.eval([false]));
    }

    #[test]
    fn constants() {
        assert!(!GateKind::Const0.eval([]));
        assert!(GateKind::Const1.eval([]));
    }

    #[test]
    fn word_eval_matches_scalar_eval() {
        for kind in GateKind::ALL {
            let arity = kind.fixed_arity().unwrap_or(3);
            // Exhaust all scalar assignments; pack them into word lanes.
            let n_cases = 1usize << arity;
            let mut words = vec![0u64; arity];
            for case in 0..n_cases {
                for (i, w) in words.iter_mut().enumerate() {
                    if case >> i & 1 == 1 {
                        *w |= 1 << case;
                    }
                }
            }
            let out = kind.eval_words(&words);
            for case in 0..n_cases {
                let bits = (0..arity).map(|i| case >> i & 1 == 1);
                let scalar = kind.eval(bits);
                assert_eq!(out >> case & 1 == 1, scalar, "{kind} case {case}");
            }
        }
    }

    #[test]
    fn parity_reduces_over_three_inputs() {
        assert!(GateKind::Xor.eval([true, true, true]));
        assert!(!GateKind::Xnor.eval([true, true, true]));
        assert!(!GateKind::Xor.eval([true, true, false]));
    }

    #[test]
    fn mnemonic_round_trips() {
        for kind in GateKind::ALL {
            assert_eq!(kind.mnemonic().parse::<GateKind>().unwrap(), kind);
            assert_eq!(
                kind.mnemonic().to_lowercase().parse::<GateKind>().unwrap(),
                kind
            );
        }
        assert_eq!("BUFF".parse::<GateKind>().unwrap(), GateKind::Buf);
        assert!("MAJ".parse::<GateKind>().is_err());
    }

    #[test]
    fn base_strips_inversion() {
        assert_eq!(GateKind::Nand.base(), GateKind::And);
        assert_eq!(GateKind::Nor.base(), GateKind::Or);
        assert_eq!(GateKind::Xnor.base(), GateKind::Xor);
        assert_eq!(GateKind::And.base(), GateKind::And);
        for kind in GateKind::ALL {
            assert!(!kind.base().is_inverting() || kind == kind.base());
        }
    }

    #[test]
    fn arity_validation() {
        assert!(GateKind::And.arity_ok(1));
        assert!(GateKind::And.arity_ok(9));
        assert!(!GateKind::And.arity_ok(0));
        assert!(GateKind::Not.arity_ok(1));
        assert!(!GateKind::Not.arity_ok(2));
        assert!(GateKind::Const1.arity_ok(0));
        assert!(!GateKind::Const1.arity_ok(1));
    }
}
