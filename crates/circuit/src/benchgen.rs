//! Deterministic synthetic benchmark generation.
//!
//! The published ISCAS-85 / MCNC-89 netlists cannot be redistributed with
//! this crate, so [`generate`] produces stand-ins that preserve the
//! *structural properties* the paper's evaluation depends on:
//!
//! * matching primary-input and primary-output counts and an (approximately)
//!   matching gate count;
//! * heavy **reconvergent fan-out** — the property that makes internal
//!   signals spatially correlated and defeats independence/pairwise
//!   estimators;
//! * bounded fan-in (≤ 4) and realistic gate-kind mix (NAND-rich, as in
//!   ISCAS-85);
//! * deterministic output: the same [`GeneratorConfig`] always yields the
//!   identical circuit, across platforms and releases (the generator embeds
//!   its own PRNG rather than depending on `rand`).
//!
//! Generation is **cone structured**, mirroring how the real benchmarks are
//! built (ALU slices, channel controllers, parity trees): each primary
//! output is a *reduction tree* over a window of primary inputs. The
//! tree's leaf multiset repeats window inputs (local reconvergent fan-out)
//! and, with probability `1 − locality`, taps logic from previously built
//! cones (cross-cone sharing — the global reconvergence that correlates
//! outputs). Every gate feeds the reduction, so there is no dead logic,
//! and gate/output counts are met exactly.

use crate::{Circuit, CircuitBuilder, GateKind, LineId};

/// Minimal deterministic PRNG (xorshift64*), embedded so generated
/// benchmarks never change across dependency upgrades.
#[derive(Debug, Clone)]
pub(crate) struct Rng64 {
    state: u64,
}

impl Rng64 {
    pub(crate) fn new(seed: u64) -> Rng64 {
        // Avoid the all-zero fixed point.
        Rng64 {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform integer in `0..bound` (`bound` ≥ 1).
    pub(crate) fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound >= 1);
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub(crate) fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Parameters for [`generate`].
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Circuit name.
    pub name: &'static str,
    /// Number of primary inputs (≥ 1).
    pub inputs: usize,
    /// Number of primary outputs (≥ 1, ≤ reachable sinks).
    pub outputs: usize,
    /// Exact gate count (split across the output cones).
    pub gates: usize,
    /// PRNG seed; same seed ⇒ identical circuit.
    pub seed: u64,
    /// Probability that a cone leaf is a window input rather than a tap
    /// into another cone's logic. The complement (`1 − locality`) controls
    /// cross-cone sharing and therefore global reconvergence.
    pub locality: f64,
    /// Maximum fan-in of generated gates (2..=4 realistic).
    pub max_fanin: usize,
}

impl GeneratorConfig {
    /// A reasonable default configuration for a named benchmark: ISCAS-like
    /// gate mix, locality 0.8, fan-in ≤ 4.
    pub fn default_for(name: &'static str) -> GeneratorConfig {
        GeneratorConfig {
            name,
            inputs: 8,
            outputs: 4,
            gates: 64,
            seed: crate::catalog::seed_from_name(name),
            locality: 0.8,
            max_fanin: 4,
        }
    }
}

fn pick_kind(rng: &mut Rng64) -> GateKind {
    // NAND-rich mix, as in ISCAS-85 netlists.
    match rng.below(100) {
        0..=29 => GateKind::Nand,
        30..=44 => GateKind::And,
        45..=59 => GateKind::Nor,
        60..=74 => GateKind::Or,
        75..=84 => GateKind::Not,
        85..=91 => GateKind::Xor,
        92..=95 => GateKind::Xnor,
        _ => GateKind::Buf,
    }
}

/// Generates a deterministic synthetic benchmark circuit (see the module
/// docs for the cone-structured construction).
///
/// # Panics
///
/// Panics if `inputs` or `outputs` is zero, or if `gates < outputs` (each
/// output needs at least its own root gate).
///
/// # Example
///
/// ```
/// use swact_circuit::benchgen::{generate, GeneratorConfig};
///
/// let config = GeneratorConfig {
///     inputs: 6,
///     outputs: 3,
///     gates: 40,
///     ..GeneratorConfig::default_for("demo")
/// };
/// let c = generate(&config);
/// assert_eq!(c.num_inputs(), 6);
/// assert_eq!(c.num_outputs(), 3);
/// assert_eq!(c.num_gates(), 40);
/// ```
pub fn generate(config: &GeneratorConfig) -> Circuit {
    assert!(config.inputs >= 1, "need at least one primary input");
    assert!(config.outputs >= 1, "need at least one primary output");
    assert!(
        config.gates >= config.outputs,
        "need at least one gate per output ({} gates for {} outputs)",
        config.gates,
        config.outputs
    );
    let mut rng = Rng64::new(config.seed);
    let mut b = CircuitBuilder::new(config.name);
    // names[i] for i < inputs are primary inputs; the rest are gate lines.
    let mut names: Vec<String> = Vec::with_capacity(config.inputs + config.gates);
    for i in 0..config.inputs {
        let name = format!("pi{i}");
        b.input(&name).expect("generated names are unique");
        names.push(name);
    }
    // Split the gate budget across cones (remainder spread over the first
    // cones), and give each output a wrap-around window of inputs twice
    // the average share, so neighbouring cones overlap.
    let per_cone = config.gates / config.outputs;
    let remainder = config.gates % config.outputs;
    let stride = config.inputs.div_ceil(config.outputs);
    let window = (2 * stride).clamp(2, config.inputs);
    let mut used_input = vec![false; config.inputs];
    let mut gate_no = 0usize;

    for cone in 0..config.outputs {
        let budget = per_cone + usize::from(cone < remainder);
        // Roughly one gate in eight is an inverter/buffer stage; the rest
        // are binary reductions. A binary reduction of `k` leaves uses
        // `k − 1` gates, so the leaf count follows from the split.
        let unary = if budget > 2 { budget / 8 } else { 0 };
        let binary = budget - unary;
        let window_start = cone * stride % config.inputs;
        // Leaf multiset: the window inputs first — not-yet-used inputs
        // leading, so narrow cones still cover every primary input — then
        // repeats / cross-cone taps.
        let mut window_inputs: Vec<usize> = (0..window)
            .map(|k| (window_start + k) % config.inputs)
            .collect();
        window_inputs.sort_by_key(|&i| used_input[i]);
        let mut pool: Vec<usize> = Vec::with_capacity(binary + 1);
        for &input in window_inputs.iter().take(binary + 1) {
            pool.push(input);
            used_input[input] = true;
        }
        while pool.len() < binary + 1 {
            let leaf = if rng.unit() < config.locality || names.len() == config.inputs {
                (window_start + rng.below(window)) % config.inputs
            } else {
                // Tap an existing gate line from an earlier cone.
                config.inputs + rng.below(names.len() - config.inputs)
            };
            pool.push(leaf);
        }
        let mut remaining_unary = unary;
        // Reduce the pool to a single line.
        while pool.len() > 1 || remaining_unary > 0 {
            let apply_unary = remaining_unary > 0 && (pool.len() == 1 || rng.below(8) == 0);
            let (kind, chosen) = if apply_unary {
                remaining_unary -= 1;
                let kind = if rng.below(4) == 0 {
                    GateKind::Buf
                } else {
                    GateKind::Not
                };
                let k = rng.below(pool.len());
                (kind, vec![pool.swap_remove(k)])
            } else {
                let mut kind = pick_kind(&mut rng);
                while kind.fixed_arity().is_some() {
                    kind = pick_kind(&mut rng);
                }
                // Bias towards recently produced lines for depth.
                let mut chosen = Vec::with_capacity(2);
                for _ in 0..2 {
                    let k = if rng.below(3) == 0 && pool.len() > 2 {
                        pool.len() - 1 - rng.below(2)
                    } else {
                        rng.below(pool.len())
                    };
                    chosen.push(pool.swap_remove(k));
                }
                // Duplicate leaves are fine for AND/OR-family gates (they
                // just alias) but make parity gates constant; avoid that.
                if chosen[0] == chosen[1] && matches!(kind, GateKind::Xor | GateKind::Xnor) {
                    kind = GateKind::Nand;
                }
                (kind, chosen)
            };
            let name = format!("n{gate_no}");
            gate_no += 1;
            let input_names: Vec<&str> = chosen.iter().map(|&i| names[i].as_str()).collect();
            b.gate(&name, kind, &input_names)
                .expect("generated names are unique");
            pool.push(names.len());
            names.push(name);
        }
        b.output(&names[pool[0]]).expect("declared line");
    }
    debug_assert_eq!(gate_no, config.gates);
    b.finish()
        .expect("generator maintains structural invariants")
}

/// Generates a chain of `depth` alternating gates over `inputs` primary
/// inputs — a minimal-treewidth stress case for deep junction trees.
pub fn chain(name: &'static str, inputs: usize, depth: usize, seed: u64) -> Circuit {
    let mut rng = Rng64::new(seed);
    let mut b = CircuitBuilder::new(name);
    let mut prev = String::new();
    for i in 0..inputs.max(2) {
        let n = format!("pi{i}");
        b.input(&n).expect("unique");
        prev = n;
    }
    for d in 0..depth {
        let other = format!("pi{}", rng.below(inputs.max(2)));
        let kind = if d % 2 == 0 {
            GateKind::Nand
        } else {
            GateKind::Xor
        };
        let n = format!("s{d}");
        b.gate(&n, kind, &[&prev, &other]).expect("unique");
        prev = n;
    }
    b.output(&prev).expect("declared");
    b.finish().expect("chain is structurally valid")
}

/// Generates a complete tree of 2-input gates with `2^levels` leaf inputs —
/// the best case for exact inference (junction tree of width 3).
pub fn tree(name: &'static str, levels: u32, kind: GateKind, seed: u64) -> Circuit {
    assert!(kind.is_multi_input(), "tree gates must be multi-input");
    let mut rng = Rng64::new(seed);
    let mut b = CircuitBuilder::new(name);
    let leaves = 1usize << levels;
    let mut frontier: Vec<String> = (0..leaves)
        .map(|i| {
            let n = format!("pi{i}");
            b.input(&n).expect("unique");
            n
        })
        .collect();
    let mut id = 0usize;
    while frontier.len() > 1 {
        let mut next = Vec::with_capacity(frontier.len() / 2);
        for pair in frontier.chunks(2) {
            if pair.len() == 1 {
                next.push(pair[0].clone());
                continue;
            }
            let n = format!("t{id}");
            id += 1;
            b.gate(&n, kind, &[&pair[0], &pair[1]]).expect("unique");
            next.push(n);
        }
        frontier = next;
        let _ = rng.next_u64();
    }
    b.output(&frontier[0]).expect("declared");
    b.finish().expect("tree is structurally valid")
}

/// Generates a circuit with an adjustable amount of reconvergent fan-out:
/// `branches` parallel functions of the *same* shared inputs, recombined by
/// one collector gate. With `branches` ≥ 2 all internal lines are strongly
/// spatially correlated — the regime where pairwise methods lose accuracy.
pub fn reconvergent(name: &'static str, inputs: usize, branches: usize, seed: u64) -> Circuit {
    assert!(inputs >= 2 && branches >= 1);
    let mut rng = Rng64::new(seed);
    let mut b = CircuitBuilder::new(name);
    let pis: Vec<String> = (0..inputs)
        .map(|i| {
            let n = format!("pi{i}");
            b.input(&n).expect("unique");
            n
        })
        .collect();
    let mut branch_outs = Vec::with_capacity(branches);
    for br in 0..branches {
        let kinds = [GateKind::Nand, GateKind::Nor, GateKind::Xor, GateKind::And];
        let mut acc = pis[rng.below(inputs)].clone();
        for (step, pi) in pis.iter().enumerate() {
            let n = format!("b{br}_{step}");
            let kind = kinds[(br + step) % kinds.len()];
            b.gate(&n, kind, &[&acc, pi]).expect("unique");
            acc = n;
        }
        branch_outs.push(acc);
    }
    let refs: Vec<&str> = branch_outs.iter().map(String::as_str).collect();
    if refs.len() == 1 {
        b.output(refs[0]).expect("declared");
    } else {
        b.gate("y", GateKind::Xor, &refs).expect("unique");
        b.output("y").expect("declared");
    }
    b.finish()
        .expect("reconvergent generator is structurally valid")
}

/// Returns the ids of all primary-input lines that reach no output — the
/// generator guarantees this is empty.
pub fn dead_inputs(circuit: &Circuit) -> Vec<LineId> {
    let cone = circuit.fanin_cone(circuit.outputs());
    let mut in_cone = vec![false; circuit.num_lines()];
    for l in cone {
        in_cone[l.index()] = true;
    }
    circuit
        .inputs()
        .iter()
        .copied()
        .filter(|l| !in_cone[l.index()])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_not_constant() {
        let mut a = Rng64::new(7);
        let mut b = Rng64::new(7);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn rng_unit_in_range() {
        let mut rng = Rng64::new(99);
        for _ in 0..1000 {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn generator_matches_interface_counts() {
        let config = GeneratorConfig {
            inputs: 12,
            outputs: 5,
            gates: 100,
            ..GeneratorConfig::default_for("gen_test")
        };
        let c = generate(&config);
        assert_eq!(c.num_inputs(), 12);
        assert_eq!(c.num_outputs(), 5);
        assert_eq!(c.num_gates(), 100, "gate budget met exactly");
    }

    #[test]
    fn generator_uses_every_primary_input() {
        let config = GeneratorConfig {
            inputs: 20,
            outputs: 3,
            gates: 60,
            ..GeneratorConfig::default_for("use_all")
        };
        let c = generate(&config);
        assert!(dead_inputs(&c).is_empty());
    }

    #[test]
    fn generator_has_reconvergent_fanout() {
        let config = GeneratorConfig {
            inputs: 10,
            outputs: 2,
            gates: 120,
            ..GeneratorConfig::default_for("reconv")
        };
        let c = generate(&config);
        let multi_fanout = c.fanout_counts().into_iter().filter(|&n| n >= 2).count();
        assert!(
            multi_fanout >= 10,
            "expected reconvergence, found {multi_fanout} multi-fanout lines"
        );
    }

    #[test]
    fn generator_respects_max_fanin() {
        let config = GeneratorConfig {
            inputs: 10,
            outputs: 2,
            gates: 150,
            max_fanin: 3,
            ..GeneratorConfig::default_for("fanin_cap")
        };
        let c = generate(&config);
        assert!(c.stats().max_fanin <= 3);
    }

    #[test]
    fn different_seeds_differ() {
        let base = GeneratorConfig {
            inputs: 8,
            outputs: 2,
            gates: 50,
            ..GeneratorConfig::default_for("seeded")
        };
        let a = generate(&base);
        let b = generate(&GeneratorConfig {
            seed: base.seed + 1,
            ..base.clone()
        });
        let differs = a
            .line_ids()
            .any(|l| b.num_lines() <= l.index() || a.gate(l) != b.gate(l));
        assert!(differs || a.num_lines() != b.num_lines());
    }

    #[test]
    fn chain_depth_and_tree_shape() {
        let c = chain("chain8", 4, 8, 1);
        assert_eq!(c.stats().depth, 8);
        let t = tree("tree16", 4, GateKind::And, 1);
        assert_eq!(t.num_inputs(), 16);
        assert_eq!(t.num_gates(), 15);
        assert_eq!(t.stats().depth, 4);
    }

    #[test]
    fn reconvergent_branches_share_support() {
        let c = reconvergent("rc", 4, 3, 5);
        assert_eq!(c.num_outputs(), 1);
        let support = c.support(c.outputs());
        assert_eq!(support.len(), 4, "all inputs shared by all branches");
    }

    #[test]
    #[should_panic(expected = "at least one gate per output")]
    fn too_many_outputs_panics() {
        let config = GeneratorConfig {
            inputs: 2,
            outputs: 10,
            gates: 1,
            ..GeneratorConfig::default_for("bad")
        };
        let _ = generate(&config);
    }

    #[test]
    fn no_dead_logic() {
        let config = GeneratorConfig {
            inputs: 16,
            outputs: 4,
            gates: 120,
            ..GeneratorConfig::default_for("live")
        };
        let c = generate(&config);
        let cone = c.fanin_cone(c.outputs());
        assert_eq!(cone.len(), c.num_lines(), "every line reaches an output");
    }
}
