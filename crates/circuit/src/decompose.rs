//! Fan-in decomposition: rewriting wide gates into trees of two-input gates.
//!
//! Probabilistic models over gate netlists pay exponentially in gate fan-in
//! (a *k*-input gate induces a clique over *k + 1* four-state variables in
//! the LIDAG's moral graph — `4^(k+1)` states). Decomposing every gate with
//! fan-in above a threshold into a balanced tree of narrower gates of the
//! same *base* kind bounds that cost while computing the identical Boolean
//! function.
//!
//! Only associative kinds are decomposed (`AND`/`OR`/`XOR` and their
//! inverting forms, whose inversion is applied once at the final stage).

use crate::{Circuit, CircuitError, Driver, Gate};

/// Rewrites every gate with fan-in greater than `max_fanin` into a balanced
/// tree of gates with fan-in at most `max_fanin`, preserving the Boolean
/// function, line names, and the input/output interface. Introduced lines
/// are named `<output>__d<k>`.
///
/// Gates already within the bound are copied unchanged, so a circuit that
/// satisfies the bound round-trips structurally identical.
///
/// # Errors
///
/// Returns an error only if an introduced name collides with an existing
/// line (avoid `__d` suffixes in source netlists).
///
/// # Panics
///
/// Panics if `max_fanin < 2`.
///
/// # Example
///
/// ```
/// use swact_circuit::{decompose::decompose_fanin, CircuitBuilder, GateKind};
///
/// # fn main() -> Result<(), swact_circuit::CircuitError> {
/// let mut b = CircuitBuilder::new("wide");
/// for name in ["a", "b", "c", "d", "e"] { b.input(name)?; }
/// b.gate("y", GateKind::Nand, &["a", "b", "c", "d", "e"])?;
/// b.output("y")?;
/// let wide = b.finish()?;
///
/// let narrow = decompose_fanin(&wide, 2)?;
/// assert!(narrow.stats().max_fanin <= 2);
/// assert_eq!(narrow.num_outputs(), 1);
/// # Ok(())
/// # }
/// ```
pub fn decompose_fanin(circuit: &Circuit, max_fanin: usize) -> Result<Circuit, CircuitError> {
    assert!(max_fanin >= 2, "max_fanin must be at least 2");
    let mut lines: Vec<(String, Driver)> = Vec::with_capacity(circuit.num_lines());
    // Old line id -> new dense index. Old lines keep relative order; helper
    // lines are interleaved just before the gate that consumes them.
    let mut new_index = vec![usize::MAX; circuit.num_lines()];
    let order = circuit.topo_order();
    for &line in &order {
        let name = circuit.line_name(line).to_string();
        match circuit.driver(line) {
            Driver::Input => {
                new_index[line.index()] = lines.len();
                lines.push((name, Driver::Input));
            }
            Driver::Gate(g) => {
                let mapped: Vec<usize> = g.inputs.iter().map(|&i| new_index[i.index()]).collect();
                if g.inputs.len() <= max_fanin {
                    new_index[line.index()] = lines.len();
                    lines.push((
                        name,
                        Driver::Gate(Gate {
                            kind: g.kind,
                            inputs: mapped.into_iter().map(crate::LineId::from_index).collect(),
                        }),
                    ));
                    continue;
                }
                let base = g.kind.base();
                let mut frontier = mapped;
                let mut helper = 0usize;
                while frontier.len() > max_fanin {
                    let mut next = Vec::with_capacity(frontier.len() / max_fanin + 1);
                    for chunk in frontier.chunks(max_fanin) {
                        if chunk.len() == 1 {
                            next.push(chunk[0]);
                            continue;
                        }
                        let helper_name = format!("{name}__d{helper}");
                        helper += 1;
                        let idx = lines.len();
                        lines.push((
                            helper_name,
                            Driver::Gate(Gate {
                                kind: base,
                                inputs: chunk
                                    .iter()
                                    .map(|&i| crate::LineId::from_index(i))
                                    .collect(),
                            }),
                        ));
                        next.push(idx);
                    }
                    frontier = next;
                }
                new_index[line.index()] = lines.len();
                lines.push((
                    name,
                    Driver::Gate(Gate {
                        kind: g.kind,
                        inputs: frontier
                            .into_iter()
                            .map(crate::LineId::from_index)
                            .collect(),
                    }),
                ));
            }
        }
    }
    let inputs = circuit
        .inputs()
        .iter()
        .map(|&l| crate::LineId::from_index(new_index[l.index()]))
        .collect();
    let outputs = circuit
        .outputs()
        .iter()
        .map(|&l| crate::LineId::from_index(new_index[l.index()]))
        .collect();
    Circuit::from_parts(circuit.name().to_string(), lines, inputs, outputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CircuitBuilder, GateKind};

    fn eval(circuit: &Circuit, assignment: &[bool]) -> Vec<bool> {
        let mut values = vec![false; circuit.num_lines()];
        for (i, &pi) in circuit.inputs().iter().enumerate() {
            values[pi.index()] = assignment[i];
        }
        for line in circuit.topo_order() {
            if let Some(g) = circuit.gate(line) {
                values[line.index()] = g.kind.eval(g.inputs.iter().map(|&l| values[l.index()]));
            }
        }
        circuit
            .outputs()
            .iter()
            .map(|&o| values[o.index()])
            .collect()
    }

    fn wide(kind: GateKind, fanin: usize) -> Circuit {
        let mut b = CircuitBuilder::new("wide");
        let names: Vec<String> = (0..fanin).map(|i| format!("x{i}")).collect();
        for n in &names {
            b.input(n).unwrap();
        }
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        b.gate("y", kind, &refs).unwrap();
        b.output("y").unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn function_preserved_for_all_kinds_and_fanins() {
        for kind in [
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ] {
            for fanin in [3, 5, 7, 9] {
                let original = wide(kind, fanin);
                for max in [2, 3, 4] {
                    let narrow = decompose_fanin(&original, max).unwrap();
                    assert!(narrow.stats().max_fanin <= max);
                    for case in 0..1usize << fanin {
                        let assignment: Vec<bool> =
                            (0..fanin).map(|i| case >> i & 1 == 1).collect();
                        assert_eq!(
                            eval(&original, &assignment),
                            eval(&narrow, &assignment),
                            "{kind} fanin={fanin} max={max} case={case}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn narrow_circuit_unchanged() {
        let c = crate::catalog::c17();
        let d = decompose_fanin(&c, 2).unwrap();
        assert_eq!(d.num_lines(), c.num_lines());
        assert_eq!(d.num_gates(), c.num_gates());
    }

    #[test]
    fn interface_preserved() {
        let c = wide(GateKind::Nor, 9);
        let d = decompose_fanin(&c, 2).unwrap();
        assert_eq!(d.num_inputs(), 9);
        assert_eq!(d.num_outputs(), 1);
        assert_eq!(d.line_name(d.outputs()[0]), "y");
        // Output gate keeps the inverting kind.
        assert_eq!(d.gate(d.outputs()[0]).unwrap().kind, GateKind::Nor);
    }

    #[test]
    fn helper_names_are_derived() {
        let c = wide(GateKind::And, 6);
        let d = decompose_fanin(&c, 2).unwrap();
        assert!(d.find_line("y__d0").is_some());
    }

    #[test]
    #[should_panic(expected = "max_fanin")]
    fn max_fanin_one_panics() {
        let c = crate::catalog::c17();
        let _ = decompose_fanin(&c, 1);
    }

    #[test]
    fn decomposes_benchmark_circuits() {
        let c = crate::catalog::benchmark("c432").unwrap();
        let d = decompose_fanin(&c, 2).unwrap();
        assert!(d.stats().max_fanin <= 2);
        assert_eq!(d.num_inputs(), c.num_inputs());
        assert_eq!(d.num_outputs(), c.num_outputs());
    }
}
