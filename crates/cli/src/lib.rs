//! Implementation of the `swact` command-line tool.
//!
//! The binary front-end (`src/main.rs`) is a thin wrapper over [`run`],
//! which takes the argument list and returns the rendered output — making
//! every command path unit-testable without spawning processes.
//!
//! ```text
//! swact estimate <netlist.bench> [--p1 P] [--activity A] [--budget N]
//!                [--single-bn] [--power] [--sequential]
//! swact batch    <netlist.bench> [--jobs N] [--sweep N] [--spec FILE]
//! swact compare  <netlist.bench> [--pairs N]
//! swact bench    <name>
//! swact dot      <netlist.bench>
//! swact list
//! ```

use std::fmt::Write as _;

use swact::sequential::{estimate_sequential, SequentialOptions};
use swact::{
    estimate, Backend, Budget, InputModel, InputSpec, KernelMode, Options, OrderingStrategy,
    PowerModel, SegmentationStrategy, SparseMode, StructureStrategy,
};
use swact_baselines::{Independence, PairwiseCorrelation, SwitchingEstimator, TransitionDensity};
use swact_circuit::sequential::parse_bench_sequential;
use swact_circuit::{catalog, parse::parse_bench, write, Circuit};
use swact_engine::Engine;
use swact_sim::{measure_activity, StreamModel};

/// A user-facing CLI failure: message plus suggested exit code.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
    /// Process exit code (2 = usage, 1 = runtime).
    pub exit_code: i32,
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

fn usage_error(message: impl Into<String>) -> CliError {
    CliError {
        message: format!("{}\n\n{}", message.into(), USAGE),
        exit_code: 2,
    }
}

fn runtime_error(message: impl std::fmt::Display) -> CliError {
    CliError {
        message: message.to_string(),
        exit_code: 1,
    }
}

/// The tool's usage text.
pub const USAGE: &str = "\
swact — switching-activity and power estimation (Bhanja & Ranganathan, DAC 2001)

USAGE:
  swact estimate <netlist.bench> [options]   estimate per-line switching
  swact plan     <netlist.bench> [options]   show the segmentation plan without compiling
  swact batch    <netlist.bench> [options]   estimate many input scenarios at once
  swact compare  <netlist.bench> [--pairs N] compare against baselines & simulation
  swact bench    <name>                      print a built-in benchmark as .bench
  swact dot      <netlist.bench>             print the circuit as Graphviz DOT
  swact verilog  <netlist.bench>             print the circuit as structural Verilog
  swact serve    [options]                   run the HTTP/JSON inference service
  swact cache    <ls|verify|rm> <DIR>        inspect or prune a compiled-artifact cache
  swact list                                 list built-in benchmarks

ESTIMATE OPTIONS:
  --p1 <P>         signal probability for every input (default 0.5)
  --activity <A>   switching activity for every input (default 2·P·(1−P))
  --budget <N>     junction-tree state budget per segment (default 131072)
  --budget-states <N>  hard cap on estimated junction-tree states per
                   segment; over-budget segments are replanned tighter or
                   fall back to the twostate backend (reported as degraded)
  --deadline-ms <MS>   per-stage wall-clock deadline (compile/propagate),
                   checked cooperatively at segment/wave boundaries
  --no-fallback    fail with a typed error instead of degrading when a
                   segment exceeds --budget-states
  --single-bn      force one exact Bayesian network (may be infeasible)
  --sparse <MODE>  zero-compress clique potentials: auto, on, or off
                   (default auto; results are bit-identical across modes)
  --kernel <K>     propagation kernel: scalar (default; bit-identical to the
                   reference factor algebra) or simd (reassociated 4-lane
                   reductions — faster, ~1e-15 relative difference, cached
                   and persisted under its own model key)
  --backend <B>    inference backend: jtree (exact junction trees, default),
                   bdd (exact per-segment OBDDs), sampling (anytime
                   likelihood weighting with a confidence interval), or
                   twostate (2p(1−p) proxy)
  --seed <N>       RNG seed for the sampling backend (default 0); a fixed
                   seed gives bit-identical results across job counts and
                   warm/cold caches
  --ci-half-width <W>  sampling stops once the mean-switching confidence
                   half-width is ≤ W (default 0.01)
  --ci-z <Z>       z-score for the sampling confidence interval
                   (default 1.96 ≈ 95%)
  --cache-dir <DIR>  reuse compiled models across processes: load the
                   compiled pipeline from DIR when a bit-identical artifact
                   exists, otherwise compile and persist one
  --ordering <O>   structure-ordering strategy: greedy (default) or force
                   (FORCE iterative layout; the compiled artifact keeps
                   whichever order is cheaper, so results never regress)
  --seg-search     balanced-cut segmentation search: backtrack each budget
                   trip to the checkpoint with the smallest boundary cut
  --power          also print the dynamic-power report
  --sequential     treat DFFs via fixed-point iteration (default: reject DFFs)
  --csv            emit per-line results as CSV instead of a table

PLAN OPTIONS:
  accepts the ESTIMATE options that shape the plan (--budget, --ordering,
  --seg-search, --single-bn) and prints the segmentation the estimator
  would compile: per-segment gates, roots, boundary roots, and the
  planner's estimated junction-tree states — no model is compiled;
  with --budget-states it also predicts the degradation-ladder rung
  each segment would land on (primary backend, sampling, twostate, or
  error under --no-fallback)

BATCH OPTIONS:
  --jobs <N>       worker threads (default: all CPUs, never more than the
                   host offers); results are identical for every N — the
                   circuit compiles once and all scenarios propagate over
                   the shared junction trees
  --jobs-force <N> exact worker count, bypassing the available-CPU clamp
                   (benchmarking aid; oversubscription only slows batches)
  --no-incremental disable cross-scenario reuse (per-edge message cache and
                   segment posterior memo); results are bit-identical with
                   or without it — this only measures the cold baseline
  --sweep <N>      estimate N scenarios with p1 swept over [0.05, 0.95]
                   (default 8; ignored when --spec is given)
  --spec <FILE>    read scenarios from FILE: one scenario per line, either a
                   single p1 for all inputs or one p1 per input
                   (whitespace/comma separated; `#` starts a comment)
  --budget <N>     junction-tree state budget per segment (default 131072)
  --budget-states <N>  hard per-segment state cap (degrade-or-report; see
                   ESTIMATE OPTIONS)
  --deadline-ms <MS>   per-stage deadline; also sheds scenarios whose queue
                   wait exceeds it
  --no-fallback    fail compilation instead of degrading over-budget segments
  --sparse <MODE>  zero-compress clique potentials: auto, on, or off
  --kernel <K>     propagation kernel: scalar (default) or simd (see
                   ESTIMATE OPTIONS)
  --backend <B>    inference backend: jtree (default), bdd, sampling, or
                   twostate
  --seed <N>       sampling RNG seed (default 0; see ESTIMATE OPTIONS)
  --ci-half-width <W>  sampling confidence-interval target (default 0.01)
  --ci-z <Z>       sampling confidence z-score (default 1.96)
  --cache-dir <DIR>  two-tier compiled-model cache: misses consult DIR
                   before compiling, compiles persist back for the next
                   process (warm start)
  --csv            emit per-scenario, per-line switching as CSV
  --stats          also print timing/cache metrics and the per-stage
                   plan/model/compile/propagate/forward breakdown
                   (not byte-stable)

SERVE OPTIONS:
  --addr <A>       bind address (default 127.0.0.1:7878; use :0 for an
                   ephemeral port)
  --jobs <N>       engine worker threads (default: all CPUs)
  --handlers <N>   connection-handler threads (default 4)
  --clients-config <FILE>  JSON admission policies: per-token in-flight
                   quotas and resource budgets (see swact-serve docs)
  --addr-file <FILE>  write the bound address to FILE once listening
                   (for scripts that bind an ephemeral port)
  --drain-ms <MS>  graceful-shutdown drain deadline (default 10000)
  --cache-dir <DIR>  compiled-artifact cache: pre-warmed into memory at
                   boot (GET /healthz answers 503 `warming` until done);
                   compiles persist back for the next boot

  The server runs until SIGINT/SIGTERM or POST /admin/shutdown, then
  drains in-flight requests and exits.

CACHE SUBCOMMANDS:
  swact cache ls <DIR>       list artifacts: model key, version, size
  swact cache verify <DIR>   fully validate every artifact (header,
                             checksum, structural decode); exits nonzero
                             if any artifact is corrupt or stale
  swact cache rm <DIR>       delete every artifact in DIR (only files
                             named like artifacts are touched)
  swact cache rm <DIR> --key <HEX>  delete one artifact by model key";

/// Parses arguments and runs the requested command, returning the output
/// text.
///
/// # Errors
///
/// Returns [`CliError`] with a usage message for malformed invocations and
/// a plain message for runtime failures (missing files, estimator errors).
pub fn run(args: &[String]) -> Result<String, CliError> {
    let mut it = args.iter();
    let command = it.next().ok_or_else(|| usage_error("missing command"))?;
    let rest: Vec<&String> = it.collect();
    match command.as_str() {
        "estimate" => cmd_estimate(&rest),
        "plan" => cmd_plan(&rest),
        "batch" => cmd_batch(&rest),
        "compare" => cmd_compare(&rest),
        "bench" => cmd_bench(&rest),
        "dot" => cmd_dot(&rest),
        "verilog" => cmd_verilog(&rest),
        "serve" => cmd_serve(&rest),
        "cache" => cmd_cache(&rest),
        "list" => Ok(cmd_list()),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(usage_error(format!("unknown command `{other}`"))),
    }
}

struct EstimateArgs {
    path: String,
    p1: f64,
    activity: Option<f64>,
    budget: usize,
    budget_states: Option<f64>,
    deadline_ms: Option<u64>,
    no_fallback: bool,
    single_bn: bool,
    sparse: SparseMode,
    kernel: KernelMode,
    backend: Backend,
    power: bool,
    sequential: bool,
    csv: bool,
    cache_dir: Option<String>,
    ordering: OrderingStrategy,
    seg_search: bool,
    seed: u64,
    ci_half_width: Option<f64>,
    ci_z: Option<f64>,
}

fn parse_sparse(value: &str) -> Result<SparseMode, CliError> {
    value.parse().map_err(|_| {
        usage_error(format!(
            "bad --sparse value `{value}` (expected auto, on, or off)"
        ))
    })
}

fn parse_kernel(value: &str) -> Result<KernelMode, CliError> {
    value.parse().map_err(|_| {
        usage_error(format!(
            "bad --kernel value `{value}` (expected scalar or simd)"
        ))
    })
}

fn parse_backend(value: &str) -> Result<Backend, CliError> {
    value.parse().map_err(usage_error)
}

fn parse_ordering(value: &str) -> Result<OrderingStrategy, CliError> {
    value.parse().map_err(usage_error)
}

fn strategy_for(ordering: OrderingStrategy, seg_search: bool) -> StructureStrategy {
    StructureStrategy {
        ordering,
        segmentation: if seg_search {
            SegmentationStrategy::BalancedCut
        } else {
            SegmentationStrategy::TopoCover
        },
    }
}

fn parse_estimate_args(rest: &[&String]) -> Result<EstimateArgs, CliError> {
    let mut parsed = EstimateArgs {
        path: String::new(),
        p1: 0.5,
        activity: None,
        budget: 1 << 17,
        budget_states: None,
        deadline_ms: None,
        no_fallback: false,
        single_bn: false,
        sparse: SparseMode::Auto,
        kernel: KernelMode::Scalar,
        backend: Backend::Jtree,
        power: false,
        sequential: false,
        csv: false,
        cache_dir: None,
        ordering: OrderingStrategy::Greedy,
        seg_search: false,
        seed: 0,
        ci_half_width: None,
        ci_z: None,
    };
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--p1" | "--activity" | "--budget" | "--budget-states" | "--deadline-ms"
            | "--sparse" | "--kernel" | "--backend" | "--cache-dir" | "--ordering" | "--seed"
            | "--ci-half-width" | "--ci-z" => {
                let flag = rest[i].as_str();
                let value = rest
                    .get(i + 1)
                    .ok_or_else(|| usage_error(format!("{flag} needs a value")))?;
                match flag {
                    "--p1" => {
                        parsed.p1 = value
                            .parse()
                            .map_err(|_| usage_error(format!("bad --p1 value `{value}`")))?
                    }
                    "--activity" => {
                        parsed.activity =
                            Some(value.parse().map_err(|_| {
                                usage_error(format!("bad --activity value `{value}`"))
                            })?)
                    }
                    "--budget-states" => {
                        parsed.budget_states = Some(value.parse().map_err(|_| {
                            usage_error(format!("bad --budget-states value `{value}`"))
                        })?)
                    }
                    "--deadline-ms" => {
                        parsed.deadline_ms = Some(value.parse().map_err(|_| {
                            usage_error(format!("bad --deadline-ms value `{value}`"))
                        })?)
                    }
                    "--sparse" => parsed.sparse = parse_sparse(value)?,
                    "--kernel" => parsed.kernel = parse_kernel(value)?,
                    "--backend" => parsed.backend = parse_backend(value)?,
                    "--cache-dir" => parsed.cache_dir = Some(value.to_string()),
                    "--ordering" => parsed.ordering = parse_ordering(value)?,
                    "--seed" => {
                        parsed.seed = value
                            .parse()
                            .map_err(|_| usage_error(format!("bad --seed value `{value}`")))?
                    }
                    "--ci-half-width" => {
                        parsed.ci_half_width = Some(value.parse().map_err(|_| {
                            usage_error(format!("bad --ci-half-width value `{value}`"))
                        })?)
                    }
                    "--ci-z" => {
                        parsed.ci_z = Some(
                            value
                                .parse()
                                .map_err(|_| usage_error(format!("bad --ci-z value `{value}`")))?,
                        )
                    }
                    _ => {
                        parsed.budget = value
                            .parse()
                            .map_err(|_| usage_error(format!("bad --budget value `{value}`")))?
                    }
                }
                i += 2;
            }
            "--seg-search" => {
                parsed.seg_search = true;
                i += 1;
            }
            "--no-fallback" => {
                parsed.no_fallback = true;
                i += 1;
            }
            "--single-bn" => {
                parsed.single_bn = true;
                i += 1;
            }
            "--power" => {
                parsed.power = true;
                i += 1;
            }
            "--sequential" => {
                parsed.sequential = true;
                i += 1;
            }
            "--csv" => {
                parsed.csv = true;
                i += 1;
            }
            flag if flag.starts_with("--") => {
                return Err(usage_error(format!("unknown option `{flag}`")));
            }
            path => {
                if !parsed.path.is_empty() {
                    return Err(usage_error("more than one netlist given"));
                }
                parsed.path = path.to_string();
                i += 1;
            }
        }
    }
    if parsed.path.is_empty() {
        return Err(usage_error("missing netlist path"));
    }
    Ok(parsed)
}

fn load_circuit(path: &str) -> Result<Circuit, CliError> {
    // Built-in benchmark names double as paths for convenience.
    if let Some(circuit) = catalog::benchmark(path) {
        return Ok(circuit);
    }
    let source = std::fs::read_to_string(path)
        .map_err(|e| runtime_error(format!("cannot read `{path}`: {e}")))?;
    if is_blif(path, &source) {
        return swact_circuit::blif::parse_blif_combinational(path, &source).map_err(runtime_error);
    }
    parse_bench(path, &source).map_err(runtime_error)
}

/// BLIF detection: by extension or by a leading dot-directive.
fn is_blif(path: &str, source: &str) -> bool {
    path.ends_with(".blif")
        || source
            .lines()
            .map(str::trim)
            .find(|l| !l.is_empty() && !l.starts_with('#'))
            .is_some_and(|l| l.starts_with('.'))
}

fn spec_for(args: &EstimateArgs, num_inputs: usize) -> Result<InputSpec, CliError> {
    let model = match args.activity {
        Some(a) => InputModel::new(args.p1, a).map_err(runtime_error)?,
        None => InputModel::independent(args.p1),
    };
    Ok(InputSpec::from_models(vec![model; num_inputs]))
}

fn resource_budget(budget_states: Option<f64>, deadline_ms: Option<u64>) -> Budget {
    Budget {
        max_states: budget_states,
        max_factor_bytes: None,
        deadline: deadline_ms.map(std::time::Duration::from_millis),
    }
}

fn estimator_options(args: &EstimateArgs) -> Options {
    let defaults = Options::default();
    Options {
        segment_budget: args.budget,
        single_bn: args.single_bn,
        sparse: args.sparse,
        kernel: args.kernel,
        backend: args.backend,
        budget: resource_budget(args.budget_states, args.deadline_ms),
        no_fallback: args.no_fallback,
        strategy: strategy_for(args.ordering, args.seg_search),
        seed: args.seed,
        ci_half_width: args.ci_half_width.unwrap_or(defaults.ci_half_width),
        ci_z: args.ci_z.unwrap_or(defaults.ci_z),
        ..defaults
    }
}

/// Runs one estimate through the on-disk artifact cache: load the compiled
/// pipeline from `dir` when a valid artifact for this exact model exists,
/// otherwise compile and persist one. Loaded and fresh pipelines produce
/// bit-identical estimates, so the cache never changes results — only
/// whether the compile happens.
fn estimate_via_cache(
    dir: &str,
    circuit: &Circuit,
    spec: &InputSpec,
    options: &Options,
) -> Result<swact::Estimate, CliError> {
    use swact::artifact;
    let key = artifact::model_key(circuit, Some(spec), options);
    let path = std::path::Path::new(dir).join(artifact::artifact_file_name(key));
    match artifact::read_artifact(&path, Some(key)) {
        Ok((_, compiled)) => return compiled.estimate(spec).map_err(runtime_error),
        Err(artifact::ArtifactError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => eprintln!("swact: ignoring unusable artifact {}: {e}", path.display()),
    }
    let compiled =
        swact::CompiledEstimator::compile_for(circuit, spec, options).map_err(runtime_error)?;
    if let Err(e) = artifact::write_artifact(std::path::Path::new(dir), key, &compiled) {
        eprintln!("swact: cannot persist artifact to `{dir}`: {e}");
    }
    compiled.estimate(spec).map_err(runtime_error)
}

fn cmd_estimate(rest: &[&String]) -> Result<String, CliError> {
    let args = parse_estimate_args(rest)?;
    let mut out = String::new();
    if args.sequential {
        if args.cache_dir.is_some() {
            return Err(usage_error(
                "--cache-dir does not apply to --sequential (the fixed-point \
                 loop recompiles the feedback model every iteration)",
            ));
        }
        let source = std::fs::read_to_string(&args.path)
            .map_err(|e| runtime_error(format!("cannot read `{}`: {e}", args.path)))?;
        let seq = if is_blif(&args.path, &source) {
            swact_circuit::blif::parse_blif(&args.path, &source).map_err(runtime_error)?
        } else {
            parse_bench_sequential(&args.path, &source).map_err(runtime_error)?
        };
        let spec = spec_for(&args, seq.num_primary_inputs())?;
        let result = estimate_sequential(
            &seq,
            &spec,
            &SequentialOptions {
                options: estimator_options(&args),
                ..SequentialOptions::default()
            },
        )
        .map_err(runtime_error)?;
        let _ = writeln!(
            out,
            "{}: {} primary inputs, {} registers, {} gates; fixed point in {} iterations{}",
            seq.core().name(),
            seq.num_primary_inputs(),
            seq.registers().len(),
            seq.core().num_gates(),
            result.iterations,
            if result.converged {
                ""
            } else {
                " (NOT converged)"
            }
        );
        let _ = writeln!(out, "{:<20} {:>10} {:>10}", "line", "P(switch)", "P(1)");
        for line in seq.core().line_ids() {
            let _ = writeln!(
                out,
                "{:<20} {:>10.4} {:>10.4}",
                seq.core().line_name(line),
                result.estimate.switching(line),
                result.estimate.signal_probability(line)
            );
        }
        if args.power {
            let report = PowerModel::default().power(seq.core(), &result.estimate);
            let _ = writeln!(out, "\ndynamic power: {:.3} µW", report.total_watts * 1e6);
        }
        return Ok(out);
    }
    let circuit = load_circuit(&args.path)?;
    let spec = spec_for(&args, circuit.num_inputs())?;
    let options = estimator_options(&args);
    let est = match &args.cache_dir {
        Some(dir) => estimate_via_cache(dir, &circuit, &spec, &options)?,
        None => estimate(&circuit, &spec, &options).map_err(runtime_error)?,
    };
    if args.csv {
        return Ok(est.to_csv(&circuit));
    }
    let _ = writeln!(
        out,
        "{}: {} inputs, {} gates; {} Bayesian network(s); compile {:?}, propagate {:?}",
        circuit.name(),
        circuit.num_inputs(),
        circuit.num_gates(),
        est.num_segments(),
        est.compile_time(),
        est.propagate_time()
    );
    // Degraded results must announce themselves: absent any degradation
    // these lines are absent too, keeping the common output unchanged.
    for report in est.degradations() {
        let _ = writeln!(out, "degraded: {report}");
    }
    // Sampled estimates carry their confidence interval; exact estimates
    // print nothing here.
    if let Some(a) = est.accuracy() {
        let _ = writeln!(
            out,
            "sampled: ±{:.4} at z={} over {} samples ({})",
            a.half_width,
            a.z,
            a.samples,
            if a.converged {
                "converged"
            } else {
                "budget exhausted"
            }
        );
    }
    let _ = writeln!(out, "{:<20} {:>10} {:>10}", "line", "P(switch)", "P(1)");
    for line in circuit.line_ids() {
        let _ = writeln!(
            out,
            "{:<20} {:>10.4} {:>10.4}",
            circuit.line_name(line),
            est.switching(line),
            est.signal_probability(line)
        );
    }
    let _ = writeln!(
        out,
        "\nmean switching activity: {:.4}",
        est.mean_switching()
    );
    if args.power {
        let report = PowerModel::default().power(&circuit, &est);
        let _ = writeln!(out, "dynamic power: {:.3} µW", report.total_watts * 1e6);
        let _ = writeln!(out, "hottest lines:");
        for (line, watts) in report.hottest(5) {
            let _ = writeln!(
                out,
                "  {:<18} {:>8.3} µW",
                circuit.line_name(line),
                watts * 1e6
            );
        }
    }
    Ok(out)
}

/// `swact plan`: run only the planning stage (fan-in decomposition +
/// segmentation) and print what the estimator would compile — the cheap
/// way to compare structure strategies before paying for a compile.
fn cmd_plan(rest: &[&String]) -> Result<String, CliError> {
    let args = parse_estimate_args(rest)?;
    let circuit = load_circuit(&args.path)?;
    let options = estimator_options(&args);
    let working = swact_circuit::decompose::decompose_fanin(&circuit, options.max_fanin.max(2))
        .map_err(runtime_error)?;
    let plan = if options.single_bn {
        swact::SegmentationPlan::plan(&working, 4, usize::MAX, usize::MAX - 1, options.heuristic)
    } else {
        swact::SegmentationPlan::plan_with(
            &working,
            4,
            options.segment_budget,
            options.check_interval,
            options.heuristic,
            options.strategy.segmentation,
        )
    };
    let costs = plan.estimated_costs(&working, 4, options.heuristic);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}: {} inputs, {} gates ({} after fan-in decomposition); strategy {}; budget {}",
        circuit.name(),
        circuit.num_inputs(),
        circuit.num_gates(),
        working.num_gates(),
        options.strategy,
        options.segment_budget,
    );
    let _ = writeln!(
        out,
        "{} segment(s), {} boundary root(s)",
        plan.segments().len(),
        plan.boundary_roots()
    );
    // With a --budget-states cap the plan also predicts which rung of the
    // degradation ladder each segment would land on: segments within
    // budget run the primary backend; over-budget segments degrade to the
    // anytime sampling rung (twostate when that *is* the primary backend),
    // unless --no-fallback turns the trip into a hard error. A replan may
    // still split an over-budget segment back under the cap at compile
    // time, so the prediction is the rung's worst case.
    let predicted_rung = |cost: f64| -> &'static str {
        match options.budget.max_states {
            Some(budget) if cost > budget => {
                if options.no_fallback {
                    "error"
                } else if options.backend == Backend::TwoState {
                    "twostate"
                } else {
                    "sampling"
                }
            }
            _ => options.backend.name(),
        }
    };
    if options.budget.max_states.is_some() {
        let _ = writeln!(
            out,
            "{:>4} {:>7} {:>7} {:>9} {:>14} {:>10}",
            "seg", "gates", "roots", "boundary", "est. states", "rung"
        );
    } else {
        let _ = writeln!(
            out,
            "{:>4} {:>7} {:>7} {:>9} {:>14}",
            "seg", "gates", "roots", "boundary", "est. states"
        );
    }
    for (i, (seg, cost)) in plan.segments().iter().zip(&costs).enumerate() {
        let boundary = seg
            .roots
            .iter()
            .filter(|(_, src)| *src == swact::RootSource::Boundary)
            .count();
        if options.budget.max_states.is_some() {
            let _ = writeln!(
                out,
                "{i:>4} {:>7} {:>7} {boundary:>9} {cost:>14.0} {:>10}",
                seg.gates.len(),
                seg.roots.len(),
                predicted_rung(*cost),
            );
        } else {
            let _ = writeln!(
                out,
                "{i:>4} {:>7} {:>7} {boundary:>9} {cost:>14.0}",
                seg.gates.len(),
                seg.roots.len(),
            );
        }
    }
    Ok(out)
}

struct BatchArgs {
    path: String,
    jobs: Option<usize>,
    jobs_force: Option<usize>,
    sweep: usize,
    spec_file: Option<String>,
    budget: usize,
    budget_states: Option<f64>,
    deadline_ms: Option<u64>,
    no_fallback: bool,
    no_incremental: bool,
    sparse: SparseMode,
    kernel: KernelMode,
    backend: Backend,
    csv: bool,
    stats: bool,
    cache_dir: Option<String>,
    ordering: OrderingStrategy,
    seg_search: bool,
    seed: u64,
    ci_half_width: Option<f64>,
    ci_z: Option<f64>,
}

fn parse_batch_args(rest: &[&String]) -> Result<BatchArgs, CliError> {
    let mut parsed = BatchArgs {
        path: String::new(),
        jobs: None,
        jobs_force: None,
        sweep: 8,
        spec_file: None,
        budget: 1 << 17,
        budget_states: None,
        deadline_ms: None,
        no_fallback: false,
        no_incremental: false,
        sparse: SparseMode::Auto,
        kernel: KernelMode::Scalar,
        backend: Backend::Jtree,
        csv: false,
        stats: false,
        cache_dir: None,
        ordering: OrderingStrategy::Greedy,
        seg_search: false,
        seed: 0,
        ci_half_width: None,
        ci_z: None,
    };
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            flag @ ("--jobs" | "--jobs-force" | "--sweep" | "--budget" | "--budget-states"
            | "--deadline-ms" | "--spec" | "--sparse" | "--kernel" | "--backend"
            | "--cache-dir" | "--ordering" | "--seed" | "--ci-half-width" | "--ci-z") => {
                let value = rest
                    .get(i + 1)
                    .ok_or_else(|| usage_error(format!("{flag} needs a value")))?;
                match flag {
                    "--jobs" => {
                        parsed.jobs = Some(
                            value
                                .parse()
                                .map_err(|_| usage_error(format!("bad --jobs value `{value}`")))?,
                        )
                    }
                    "--jobs-force" => {
                        parsed.jobs_force = Some(value.parse().map_err(|_| {
                            usage_error(format!("bad --jobs-force value `{value}`"))
                        })?)
                    }
                    "--sweep" => {
                        parsed.sweep = value
                            .parse()
                            .map_err(|_| usage_error(format!("bad --sweep value `{value}`")))?
                    }
                    "--budget" => {
                        parsed.budget = value
                            .parse()
                            .map_err(|_| usage_error(format!("bad --budget value `{value}`")))?
                    }
                    "--budget-states" => {
                        parsed.budget_states = Some(value.parse().map_err(|_| {
                            usage_error(format!("bad --budget-states value `{value}`"))
                        })?)
                    }
                    "--deadline-ms" => {
                        parsed.deadline_ms = Some(value.parse().map_err(|_| {
                            usage_error(format!("bad --deadline-ms value `{value}`"))
                        })?)
                    }
                    "--sparse" => parsed.sparse = parse_sparse(value)?,
                    "--kernel" => parsed.kernel = parse_kernel(value)?,
                    "--backend" => parsed.backend = parse_backend(value)?,
                    "--cache-dir" => parsed.cache_dir = Some(value.to_string()),
                    "--ordering" => parsed.ordering = parse_ordering(value)?,
                    "--seed" => {
                        parsed.seed = value
                            .parse()
                            .map_err(|_| usage_error(format!("bad --seed value `{value}`")))?
                    }
                    "--ci-half-width" => {
                        parsed.ci_half_width = Some(value.parse().map_err(|_| {
                            usage_error(format!("bad --ci-half-width value `{value}`"))
                        })?)
                    }
                    "--ci-z" => {
                        parsed.ci_z = Some(
                            value
                                .parse()
                                .map_err(|_| usage_error(format!("bad --ci-z value `{value}`")))?,
                        )
                    }
                    _ => parsed.spec_file = Some(value.to_string()),
                }
                i += 2;
            }
            "--seg-search" => {
                parsed.seg_search = true;
                i += 1;
            }
            "--no-fallback" => {
                parsed.no_fallback = true;
                i += 1;
            }
            "--no-incremental" => {
                parsed.no_incremental = true;
                i += 1;
            }
            "--csv" => {
                parsed.csv = true;
                i += 1;
            }
            "--stats" => {
                parsed.stats = true;
                i += 1;
            }
            flag if flag.starts_with("--") => {
                return Err(usage_error(format!("unknown option `{flag}`")));
            }
            path => {
                if !parsed.path.is_empty() {
                    return Err(usage_error("more than one netlist given"));
                }
                parsed.path = path.to_string();
                i += 1;
            }
        }
    }
    if parsed.path.is_empty() {
        return Err(usage_error("missing netlist path"));
    }
    if parsed.sweep == 0 {
        return Err(usage_error("--sweep must be at least 1"));
    }
    Ok(parsed)
}

/// Parses a scenario file: one scenario per line, blank lines and `#`
/// comments skipped; each line is either one p1 (all inputs) or exactly
/// `num_inputs` p1 values, separated by whitespace and/or commas.
fn parse_spec_file(source: &str, num_inputs: usize) -> Result<Vec<InputSpec>, CliError> {
    let mut specs = Vec::new();
    for (lineno, line) in source.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let values: Vec<f64> = line
            .split(|c: char| c.is_whitespace() || c == ',')
            .filter(|t| !t.is_empty())
            .map(|t| {
                t.parse().map_err(|_| {
                    runtime_error(format!("spec line {}: bad p1 value `{t}`", lineno + 1))
                })
            })
            .collect::<Result<_, _>>()?;
        let p1s = match values.len() {
            1 => vec![values[0]; num_inputs],
            n if n == num_inputs => values,
            n => {
                return Err(runtime_error(format!(
                    "spec line {}: expected 1 or {num_inputs} values, got {n}",
                    lineno + 1
                )))
            }
        };
        specs.push(InputSpec::independent(p1s));
    }
    if specs.is_empty() {
        return Err(runtime_error("spec file contains no scenarios"));
    }
    Ok(specs)
}

/// Sweep scenarios: `n` specs with every input's p1 linearly spaced over
/// [0.05, 0.95].
fn sweep_specs(n: usize, num_inputs: usize) -> Vec<InputSpec> {
    (0..n)
        .map(|i| {
            let t = if n > 1 {
                i as f64 / (n - 1) as f64
            } else {
                0.5
            };
            InputSpec::independent(vec![0.05 + 0.9 * t; num_inputs])
        })
        .collect()
}

fn cmd_batch(rest: &[&String]) -> Result<String, CliError> {
    let args = parse_batch_args(rest)?;
    let circuit = load_circuit(&args.path)?;
    let specs = match &args.spec_file {
        Some(path) => {
            let source = std::fs::read_to_string(path)
                .map_err(|e| runtime_error(format!("cannot read `{path}`: {e}")))?;
            parse_spec_file(&source, circuit.num_inputs())?
        }
        None => sweep_specs(args.sweep, circuit.num_inputs()),
    };
    let mut engine = match (args.jobs_force, args.jobs) {
        (Some(jobs), _) => Engine::with_jobs_forced(jobs),
        (None, Some(jobs)) => Engine::with_jobs(jobs),
        (None, None) => Engine::new(),
    };
    if let Some(dir) = &args.cache_dir {
        engine = engine.with_cache_dir(dir);
    }
    let defaults = Options::default();
    let options = Options {
        segment_budget: args.budget,
        sparse: args.sparse,
        kernel: args.kernel,
        backend: args.backend,
        budget: resource_budget(args.budget_states, args.deadline_ms),
        no_fallback: args.no_fallback,
        incremental: !args.no_incremental,
        strategy: strategy_for(args.ordering, args.seg_search),
        seed: args.seed,
        ci_half_width: args.ci_half_width.unwrap_or(defaults.ci_half_width),
        ci_z: args.ci_z.unwrap_or(defaults.ci_z),
        ..defaults
    };
    let report = engine
        .estimate_batch(&circuit, &specs, &options)
        .map_err(runtime_error)?;

    let mut out = String::new();
    if args.csv {
        let _ = write!(out, "scenario,p1_mean,mean_switching");
        for line in circuit.line_ids() {
            let _ = write!(out, ",{}", circuit.line_name(line));
        }
        out.push('\n');
        for (item, spec) in report.items.iter().zip(&specs) {
            let p1_mean: f64 =
                spec.models().iter().map(InputModel::p1).sum::<f64>() / spec.len() as f64;
            match &item.result {
                Ok(est) => {
                    let _ = write!(
                        out,
                        "{},{:.6},{:.6}",
                        item.index,
                        p1_mean,
                        est.mean_switching()
                    );
                    for sw in est.switching_all() {
                        let _ = write!(out, ",{sw:.6}");
                    }
                    out.push('\n');
                }
                Err(e) => {
                    let _ = writeln!(out, "{},{:.6},error: {e}", item.index, p1_mean);
                }
            }
        }
    } else {
        let _ = writeln!(
            out,
            "{}: {} inputs, {} gates; {} scenario(s) over {} Bayesian network(s)",
            circuit.name(),
            circuit.num_inputs(),
            circuit.num_gates(),
            specs.len(),
            report
                .estimates()
                .next()
                .map_or(0, swact::Estimate::num_segments),
        );
        let _ = writeln!(
            out,
            "{:<10} {:>10} {:>16}",
            "scenario", "p1(mean)", "mean P(switch)"
        );
        for (item, spec) in report.items.iter().zip(&specs) {
            let p1_mean: f64 =
                spec.models().iter().map(InputModel::p1).sum::<f64>() / spec.len() as f64;
            match &item.result {
                Ok(est) => {
                    let _ = writeln!(
                        out,
                        "{:<10} {:>10.4} {:>16.4}",
                        item.index,
                        p1_mean,
                        est.mean_switching()
                    );
                }
                Err(e) => {
                    let _ = writeln!(out, "{:<10} {:>10.4} error: {e}", item.index, p1_mean);
                }
            }
        }
    }
    if args.stats {
        // Timing lines are intentionally separate from the deterministic
        // body above: `batch --jobs 1` and `--jobs N` agree byte-for-byte
        // without --stats.
        let metrics = engine.metrics();
        let _ = writeln!(
            out,
            "\njobs {}; cache {}; compile {:?}; wall {:?}; {:.1} scenarios/s",
            report.jobs,
            if report.cache_hit { "hit" } else { "miss" },
            report.compile_time,
            report.wall_time,
            report.scenarios_per_sec()
        );
        let _ = writeln!(
            out,
            "requests {} ({} failed); queue depth max {}; propagate total {:?}; queue wait total {:?}",
            metrics.requests_completed,
            metrics.requests_failed,
            metrics.max_queue_depth,
            metrics.propagate_time,
            metrics.queue_wait
        );
        let _ = writeln!(
            out,
            "robustness: {} degraded scenario(s); {} degraded segment(s); {} panic(s); {} retrie(s)",
            report.degraded_scenarios(),
            metrics.degraded_segments,
            metrics.jobs_panicked,
            metrics.retries
        );
        // Per-rung fallback counts over all scenarios' degradation
        // reports, plus the sampling rung's anytime counters.
        let (mut replanned, mut twostate, mut sampling) = (0u64, 0u64, 0u64);
        for est in report.estimates() {
            for d in est.degradations() {
                match d.fallback {
                    swact::Fallback::Replanned { .. } => replanned += 1,
                    swact::Fallback::TwoState => twostate += 1,
                    swact::Fallback::Sampling => sampling += 1,
                    _ => {}
                }
            }
        }
        let _ = writeln!(
            out,
            "rungs: {replanned} replanned; {sampling} sampling; {twostate} twostate"
        );
        if metrics.sampled_segments > 0 || metrics.samples_drawn > 0 {
            let _ = writeln!(
                out,
                "sampling: {} segment(s); {} sample(s) drawn; {} converged / {} timed out",
                metrics.sampled_segments,
                metrics.samples_drawn,
                metrics.sampling_converged,
                metrics.sampling_timed_out
            );
        }
        if args.cache_dir.is_some() {
            let _ = writeln!(
                out,
                "artifacts: {} loaded from disk; {} persisted; {} rejected",
                metrics.artifacts_loaded, metrics.artifacts_persisted, metrics.artifacts_rejected
            );
        }
        let _ = writeln!(
            out,
            "reuse: {} message(s) cached / {} recomputed ({:.1}% reuse); {} segment(s) memo-skipped",
            metrics.messages_reused,
            metrics.messages_recomputed,
            100.0 * metrics.message_reuse_ratio(),
            metrics.segments_skipped
        );
        let stages = report.stages;
        let _ = writeln!(
            out,
            "stages: plan {:?}; model {:?}; compile {:?}; propagate {:?}; forward {:?}",
            stages.plan, stages.model, stages.compile, stages.propagate, stages.forward
        );
    }
    Ok(out)
}

fn cmd_compare(rest: &[&String]) -> Result<String, CliError> {
    let mut path = String::new();
    let mut pairs = 1usize << 18;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--pairs" => {
                let value = rest
                    .get(i + 1)
                    .ok_or_else(|| usage_error("--pairs needs a value"))?;
                pairs = value
                    .parse()
                    .map_err(|_| usage_error(format!("bad --pairs value `{value}`")))?;
                i += 2;
            }
            flag if flag.starts_with("--") => {
                return Err(usage_error(format!("unknown option `{flag}`")));
            }
            p => {
                path = p.to_string();
                i += 1;
            }
        }
    }
    if path.is_empty() {
        return Err(usage_error("missing netlist path"));
    }
    let circuit = load_circuit(&path)?;
    let spec = InputSpec::uniform(circuit.num_inputs());
    let truth = measure_activity(
        &circuit,
        &StreamModel::uniform(circuit.num_inputs()),
        pairs,
        0x5eed,
    );
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}: {} gates; ground truth = {} simulated vector pairs",
        circuit.name(),
        circuit.num_gates(),
        truth.pairs
    );
    let _ = writeln!(
        out,
        "{:<24} {:>9} {:>9} {:>9}",
        "method", "µErr", "σErr", "%Err"
    );
    let bn = estimate(&circuit, &spec, &Options::default()).map_err(runtime_error)?;
    let stats = bn.compare(&truth.switching);
    let _ = writeln!(
        out,
        "{:<24} {:>9.4} {:>9.4} {:>8.3}%",
        "bayesian-network", stats.mean_abs_error, stats.std_error, stats.percent_error
    );
    let baselines: Vec<Box<dyn SwitchingEstimator>> = vec![
        Box::new(PairwiseCorrelation::default()),
        Box::new(Independence),
        Box::new(TransitionDensity),
    ];
    for baseline in baselines {
        match baseline.estimate(&circuit, &spec) {
            Ok(sw) => {
                let stats = swact::ErrorStats::between(&sw, &truth.switching);
                let _ = writeln!(
                    out,
                    "{:<24} {:>9.4} {:>9.4} {:>8.3}%",
                    baseline.name(),
                    stats.mean_abs_error,
                    stats.std_error,
                    stats.percent_error
                );
            }
            Err(e) => {
                let _ = writeln!(out, "{:<24} failed: {e}", baseline.name());
            }
        }
    }
    Ok(out)
}

fn cmd_bench(rest: &[&String]) -> Result<String, CliError> {
    let name = rest
        .first()
        .ok_or_else(|| usage_error("missing benchmark name"))?;
    let circuit = catalog::benchmark(name)
        .ok_or_else(|| runtime_error(format!("unknown benchmark `{name}` (try `swact list`)")))?;
    Ok(write::to_bench(&circuit))
}

fn cmd_dot(rest: &[&String]) -> Result<String, CliError> {
    let path = rest
        .first()
        .ok_or_else(|| usage_error("missing netlist path"))?;
    let circuit = load_circuit(path)?;
    Ok(write::to_dot(&circuit))
}

fn cmd_verilog(rest: &[&String]) -> Result<String, CliError> {
    let path = rest
        .first()
        .ok_or_else(|| usage_error("missing netlist path"))?;
    let circuit = load_circuit(path)?;
    Ok(write::to_verilog(&circuit))
}

fn cmd_serve(rest: &[&String]) -> Result<String, CliError> {
    let mut config = swact_serve::ServerConfig::default();
    let mut addr_file: Option<String> = None;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--addr" => {
                config.addr = take_value(rest, &mut i, "--addr")?.to_string();
            }
            "--jobs" => {
                config.jobs = parse_count(take_value(rest, &mut i, "--jobs")?, "--jobs")?;
            }
            "--handlers" => {
                config.handlers =
                    parse_count(take_value(rest, &mut i, "--handlers")?, "--handlers")?;
            }
            "--clients-config" => {
                let path = take_value(rest, &mut i, "--clients-config")?;
                let source = std::fs::read_to_string(path)
                    .map_err(|e| runtime_error(format!("cannot read `{path}`: {e}")))?;
                config.clients = swact_serve::admission::ClientTable::from_json(&source)
                    .map_err(|e| runtime_error(format!("bad clients config `{path}`: {e}")))?;
            }
            "--addr-file" => {
                addr_file = Some(take_value(rest, &mut i, "--addr-file")?.to_string());
            }
            "--drain-ms" => {
                let ms = parse_count(take_value(rest, &mut i, "--drain-ms")?, "--drain-ms")?;
                config.drain = std::time::Duration::from_millis(ms as u64);
            }
            "--cache-dir" => {
                config.cache_dir = Some(std::path::PathBuf::from(take_value(
                    rest,
                    &mut i,
                    "--cache-dir",
                )?));
            }
            other => return Err(usage_error(format!("unknown serve option `{other}`"))),
        }
        i += 1;
    }

    swact_serve::install_signal_handler();
    let server = swact_serve::Server::start(config)
        .map_err(|e| runtime_error(format!("cannot bind: {e}")))?;
    let addr = server.local_addr();
    if let Some(path) = addr_file {
        std::fs::write(&path, addr.to_string())
            .map_err(|e| runtime_error(format!("cannot write `{path}`: {e}")))?;
    }
    eprintln!("swact-serve listening on http://{addr} (POST /admin/shutdown or SIGTERM to stop)");
    let handle = server.handle();
    server.wait();
    Ok(format!(
        "swact-serve on {addr}: shut down cleanly ({} scenarios served)\n",
        handle.engine_metrics().requests_completed
    ))
}

/// Artifact files under `dir`, sorted by model key. Files not named like
/// artifacts (`<32-hex-digit-key>.swact`) are ignored, so `rm` can never
/// delete anything the cache did not write.
fn cache_entries(dir: &str) -> Result<Vec<(u128, std::path::PathBuf)>, CliError> {
    let mut entries = Vec::new();
    let read_dir = std::fs::read_dir(dir)
        .map_err(|e| runtime_error(format!("cannot read cache dir `{dir}`: {e}")))?;
    for entry in read_dir {
        let entry =
            entry.map_err(|e| runtime_error(format!("cannot read cache dir `{dir}`: {e}")))?;
        if let Some(key) = entry
            .file_name()
            .to_str()
            .and_then(swact::artifact::parse_artifact_file_name)
        {
            entries.push((key, entry.path()));
        }
    }
    entries.sort();
    Ok(entries)
}

fn cmd_cache(rest: &[&String]) -> Result<String, CliError> {
    use swact::artifact;
    let sub = rest
        .first()
        .ok_or_else(|| usage_error("cache needs a subcommand: ls, verify, or rm"))?;
    if !matches!(sub.as_str(), "ls" | "verify" | "rm") {
        return Err(usage_error(format!(
            "unknown cache subcommand `{sub}` (expected ls, verify, or rm)"
        )));
    }
    let dir = rest
        .get(1)
        .ok_or_else(|| usage_error(format!("cache {sub} needs a cache directory")))?
        .as_str();
    let mut key_filter: Option<u128> = None;
    let mut i = 2;
    while i < rest.len() {
        match rest[i].as_str() {
            "--key" => {
                let value = take_value(rest, &mut i, "--key")?;
                key_filter = Some(u128::from_str_radix(value, 16).map_err(|_| {
                    usage_error(format!("bad --key value `{value}` (expected hex)"))
                })?);
            }
            other => return Err(usage_error(format!("unknown cache option `{other}`"))),
        }
        i += 1;
    }
    if key_filter.is_some() && sub.as_str() != "rm" {
        return Err(usage_error("--key only applies to `cache rm`"));
    }
    let mut entries = cache_entries(dir)?;
    if let Some(key) = key_filter {
        entries.retain(|(k, _)| *k == key);
        if entries.is_empty() {
            return Err(runtime_error(format!(
                "no artifact with key {key:032x} in `{dir}`"
            )));
        }
    }
    let mut out = String::new();
    match sub.as_str() {
        "ls" => {
            let _ = writeln!(out, "{dir}: {} artifact(s)", entries.len());
            for (key, path) in &entries {
                match artifact::read_header(path) {
                    Ok(header) => {
                        let _ = writeln!(
                            out,
                            "  {key:032x}  workspace {}  format {}  payload {} bytes",
                            header.workspace_version, header.format_version, header.payload_len
                        );
                    }
                    Err(e) => {
                        let _ = writeln!(out, "  {key:032x}  unreadable: {e}");
                    }
                }
            }
        }
        "verify" => {
            let mut failed = 0usize;
            for (key, path) in &entries {
                match artifact::verify_artifact(path) {
                    Ok(_) => {
                        let _ = writeln!(out, "  {key:032x}  ok");
                    }
                    Err(e) => {
                        failed += 1;
                        let _ = writeln!(out, "  {key:032x}  FAIL: {e}");
                    }
                }
            }
            let _ = writeln!(
                out,
                "{dir}: {} artifact(s) verified, {failed} failed",
                entries.len()
            );
            if failed > 0 {
                return Err(runtime_error(out.trim_end()));
            }
        }
        "rm" => {
            for (_, path) in &entries {
                std::fs::remove_file(path).map_err(|e| {
                    runtime_error(format!("cannot remove `{}`: {e}", path.display()))
                })?;
            }
            let _ = writeln!(out, "{dir}: removed {} artifact(s)", entries.len());
        }
        _ => unreachable!("subcommand validated above"),
    }
    Ok(out)
}

fn take_value<'a>(rest: &[&'a String], i: &mut usize, flag: &str) -> Result<&'a str, CliError> {
    *i += 1;
    rest.get(*i)
        .map(|s| s.as_str())
        .ok_or_else(|| usage_error(format!("{flag} needs a value")))
}

fn parse_count(value: &str, flag: &str) -> Result<usize, CliError> {
    value
        .parse()
        .map_err(|_| usage_error(format!("bad {flag} value `{value}`")))
}

fn cmd_list() -> String {
    let mut out = String::from("built-in benchmarks (synthetic stand-ins except c17):\n");
    for info in catalog::BENCHMARKS {
        let _ = writeln!(
            out,
            "  {:<10} {:>4} inputs {:>4} outputs {:>5} gates  {}",
            info.name,
            info.inputs,
            info.outputs,
            info.gates,
            if info.authentic { "(authentic)" } else { "" }
        );
    }
    out.push_str("  paper_example (the five-gate running example of the paper)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_strs(args: &[&str]) -> Result<String, CliError> {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        run(&owned)
    }

    #[test]
    fn help_and_unknown_commands() {
        assert!(run_strs(&["help"]).unwrap().contains("USAGE"));
        let err = run_strs(&["frobnicate"]).unwrap_err();
        assert_eq!(err.exit_code, 2);
        assert!(err.message.contains("unknown command"));
        assert!(run_strs(&[]).is_err());
    }

    #[test]
    fn list_names_all_benchmarks() {
        let out = run_strs(&["list"]).unwrap();
        for info in catalog::BENCHMARKS {
            assert!(out.contains(info.name));
        }
    }

    #[test]
    fn bench_prints_parseable_netlist() {
        let out = run_strs(&["bench", "c17"]).unwrap();
        let back = parse_bench("c17", &out).unwrap();
        assert_eq!(back.num_gates(), 6);
        assert!(run_strs(&["bench", "nonexistent"]).is_err());
    }

    #[test]
    fn estimate_builtin_benchmark() {
        let out = run_strs(&["estimate", "c17", "--power"]).unwrap();
        assert!(out.contains("mean switching activity"));
        assert!(out.contains("dynamic power"));
        assert!(out.contains("hottest lines"));
    }

    #[test]
    fn estimate_with_statistics_flags() {
        let quiet = run_strs(&["estimate", "c17", "--p1", "0.5", "--activity", "0.05"]).unwrap();
        let busy = run_strs(&["estimate", "c17"]).unwrap();
        let mean = |s: &str| -> f64 {
            s.lines()
                .find(|l| l.contains("mean switching"))
                .and_then(|l| l.rsplit(' ').next())
                .and_then(|v| v.parse().ok())
                .expect("mean line present")
        };
        assert!(mean(&quiet) < mean(&busy));
    }

    #[test]
    fn sparse_modes_produce_identical_output() {
        let auto = run_strs(&["estimate", "c17"]).unwrap();
        let on = run_strs(&["estimate", "c17", "--sparse", "on"]).unwrap();
        let off = run_strs(&["estimate", "c17", "--sparse", "OFF"]).unwrap();
        // Compile/propagate timings differ; the result tables must not.
        let table = |s: &str| s.lines().skip(1).collect::<Vec<_>>().join("\n");
        assert_eq!(table(&auto), table(&on));
        assert_eq!(table(&auto), table(&off));

        let batch_on = run_strs(&["batch", "c17", "--sweep", "4", "--sparse", "on"]).unwrap();
        let batch_off = run_strs(&["batch", "c17", "--sweep", "4", "--sparse", "off"]).unwrap();
        assert_eq!(batch_on, batch_off);
    }

    #[test]
    fn sparse_rejects_bad_mode() {
        for cmd in ["estimate", "batch"] {
            let err = run_strs(&[cmd, "c17", "--sparse", "sometimes"]).unwrap_err();
            assert_eq!(err.exit_code, 2);
            assert!(err.message.contains("bad --sparse value"));
            let err = run_strs(&[cmd, "c17", "--sparse"]).unwrap_err();
            assert_eq!(err.exit_code, 2);
            assert!(err.message.contains("--sparse needs a value"));
        }
    }

    #[test]
    fn kernel_modes_agree_closely_and_scalar_is_default() {
        let default = run_strs(&["estimate", "c17", "--csv"]).unwrap();
        let scalar = run_strs(&["estimate", "c17", "--kernel", "scalar", "--csv"]).unwrap();
        // The explicit scalar kernel IS the default path — byte-identical.
        assert_eq!(default, scalar);
        // The simd kernel reassociates reductions: values agree to ~1e-12
        // but need not be byte-identical.
        let simd = run_strs(&["estimate", "c17", "--kernel", "SIMD", "--csv"]).unwrap();
        let parse = |out: &str| -> Vec<f64> {
            out.lines()
                .skip(1)
                .flat_map(|l| l.split(',').skip(1).map(|v| v.parse().unwrap()))
                .collect::<Vec<f64>>()
        };
        let a = parse(&scalar);
        let b = parse(&simd);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() <= 1e-12, "kernel divergence: {x} vs {y}");
        }
    }

    #[test]
    fn kernel_rejects_bad_mode() {
        for cmd in ["estimate", "batch"] {
            let err = run_strs(&[cmd, "c17", "--kernel", "avx512"]).unwrap_err();
            assert_eq!(err.exit_code, 2);
            assert!(err.message.contains("bad --kernel value"));
            let err = run_strs(&[cmd, "c17", "--kernel"]).unwrap_err();
            assert_eq!(err.exit_code, 2);
            assert!(err.message.contains("--kernel needs a value"));
        }
    }

    #[test]
    fn backend_flag_selects_inference_engine() {
        // Both exact backends print the same estimate table (timing line
        // differs), and the OBDD one runs end-to-end from the CLI.
        let table = |s: &str| s.lines().skip(1).collect::<Vec<_>>().join("\n");
        let jtree = run_strs(&["estimate", "c17", "--backend", "jtree"]).unwrap();
        let bdd = run_strs(&["estimate", "c17", "--backend", "bdd"]).unwrap();
        assert_eq!(table(&jtree), table(&bdd));

        // Under pure signal probabilities the two-state proxy still runs;
        // with default temporally independent inputs it matches on c17's
        // fanout-free input cones but is a valid command either way.
        let two = run_strs(&["estimate", "c17", "--backend", "twostate"]).unwrap();
        assert!(two.contains("mean switching activity"));

        let batch = run_strs(&["batch", "c17", "--sweep", "3", "--backend", "bdd"]).unwrap();
        assert!(batch.contains("scenario"));
        assert!(!batch.contains("error:"));
    }

    #[test]
    fn sampling_backend_runs_and_reports_its_interval() {
        let out = run_strs(&["estimate", "c17", "--backend", "sampling", "--seed", "3"]).unwrap();
        assert!(out.contains("sampled: ±"), "got: {out}");
        assert!(out.contains("samples"));
        assert!(out.contains("mean switching activity"));
        // Exact backends never print the sampled line.
        let exact = run_strs(&["estimate", "c17"]).unwrap();
        assert!(!exact.contains("sampled:"));

        // Same seed ⇒ byte-identical table; different seed ⇒ a different
        // random stream (the estimates differ in the low bits).
        let table = |s: &str| s.lines().skip(1).collect::<Vec<_>>().join("\n");
        let again = run_strs(&["estimate", "c17", "--backend", "sampling", "--seed", "3"]).unwrap();
        assert_eq!(table(&out), table(&again));
        let other = run_strs(&["estimate", "c17", "--backend", "sampling", "--seed", "4"]).unwrap();
        assert_ne!(table(&out), table(&other));

        for (flag, bad) in [
            ("--seed", "entropy"),
            ("--ci-half-width", "narrow"),
            ("--ci-z", "wide"),
        ] {
            let err = run_strs(&["estimate", "c17", flag, bad]).unwrap_err();
            assert_eq!(err.exit_code, 2);
            assert!(err.message.contains(&format!("bad {flag} value")));
        }
    }

    #[test]
    fn sampling_batch_is_identical_across_job_counts() {
        fn args(jobs: &str) -> [&str; 11] {
            [
                "batch",
                "c17",
                "--jobs",
                jobs,
                "--sweep",
                "4",
                "--backend",
                "sampling",
                "--seed",
                "11",
                "--csv",
            ]
        }
        let serial = run_strs(&args("1")).unwrap();
        let parallel = run_strs(&args("4")).unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(serial.lines().count(), 5); // header + 4 scenarios
    }

    #[test]
    fn backend_flag_rejects_unknown_names() {
        for cmd in ["estimate", "batch"] {
            let err = run_strs(&[cmd, "c17", "--backend", "quantum"]).unwrap_err();
            assert_eq!(err.exit_code, 2);
            assert!(err.message.contains("unknown backend"));
            let err = run_strs(&[cmd, "c17", "--backend"]).unwrap_err();
            assert_eq!(err.exit_code, 2);
            assert!(err.message.contains("--backend needs a value"));
        }
    }

    #[test]
    fn structure_strategy_flags() {
        // FORCE only changes structure, never probabilities: the estimate
        // table must match the default bit-for-bit (timing line differs).
        let table = |s: &str| s.lines().skip(1).collect::<Vec<_>>().join("\n");
        let greedy = run_strs(&["estimate", "c17"]).unwrap();
        let force = run_strs(&["estimate", "c17", "--ordering", "force"]).unwrap();
        assert_eq!(table(&greedy), table(&force));
        let search = run_strs(&["estimate", "c17", "--seg-search"]).unwrap();
        assert!(search.contains("mean switching activity"));

        for cmd in ["estimate", "batch"] {
            let err = run_strs(&[cmd, "c17", "--ordering", "random"]).unwrap_err();
            assert_eq!(err.exit_code, 2);
            assert!(err.message.contains("unknown ordering strategy"));
            let err = run_strs(&[cmd, "c17", "--ordering"]).unwrap_err();
            assert_eq!(err.exit_code, 2);
        }
    }

    #[test]
    fn plan_subcommand_prints_segmentation() {
        let topo = run_strs(&["plan", "c432"]).unwrap();
        assert!(topo.contains("greedy/topo-cover"));
        assert!(topo.contains("segment(s)"));
        assert!(topo.contains("boundary root(s)"));
        let cut = run_strs(&["plan", "c432", "--seg-search", "--budget", "1024"]).unwrap();
        assert!(cut.contains("greedy/balanced-cut"));
        assert!(run_strs(&["plan"]).is_err());
    }

    #[test]
    fn plan_predicts_degradation_rungs_under_a_budget() {
        // Without --budget-states there is no rung column.
        let plain = run_strs(&["plan", "c432"]).unwrap();
        assert!(!plain.contains("rung"));
        // A tripping budget predicts the sampling rung for over-budget
        // segments while within-budget segments keep the primary backend.
        let tight = run_strs(&["plan", "c432", "--budget-states", "256"]).unwrap();
        assert!(tight.contains("rung"));
        assert!(tight.contains("sampling"), "got: {tight}");
        // An enormous budget keeps every segment on the primary backend.
        let loose = run_strs(&["plan", "c432", "--budget-states", "1e18"]).unwrap();
        assert!(loose.contains("rung"));
        assert!(!loose.contains("sampling"));
        assert!(loose.contains("jtree"));
        // --no-fallback turns the trip into a predicted hard error.
        let strict =
            run_strs(&["plan", "c432", "--budget-states", "256", "--no-fallback"]).unwrap();
        assert!(strict.contains("error"));
    }

    #[test]
    fn estimate_rejects_bad_flags() {
        assert_eq!(run_strs(&["estimate"]).unwrap_err().exit_code, 2);
        assert_eq!(
            run_strs(&["estimate", "c17", "--p1"])
                .unwrap_err()
                .exit_code,
            2
        );
        assert_eq!(
            run_strs(&["estimate", "c17", "--p1", "zebra"])
                .unwrap_err()
                .exit_code,
            2
        );
        assert_eq!(
            run_strs(&["estimate", "c17", "--wat"])
                .unwrap_err()
                .exit_code,
            2
        );
        assert_eq!(
            run_strs(&["estimate", "c17", "extra_path"])
                .unwrap_err()
                .exit_code,
            2
        );
    }

    #[test]
    fn estimate_from_file_and_dot() {
        let dir = std::env::temp_dir().join("swact_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.bench");
        std::fs::write(&path, "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n").unwrap();
        let path = path.to_string_lossy().to_string();
        let out = run_strs(&["estimate", &path]).unwrap();
        assert!(out.contains('y'));
        let dot = run_strs(&["dot", &path]).unwrap();
        assert!(dot.starts_with("digraph"));
        let verilog = run_strs(&["verilog", &path]).unwrap();
        assert!(verilog.contains("module"));
        assert!(verilog.contains("nand"));
        assert!(run_strs(&["estimate", "/definitely/not/here.bench"]).is_err());
    }

    #[test]
    fn sequential_estimation_via_flag() {
        let dir = std::env::temp_dir().join("swact_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shift.bench");
        std::fs::write(&path, "INPUT(a)\nOUTPUT(q)\nq = DFF(d)\nd = BUF(a)\n").unwrap();
        let path = path.to_string_lossy().to_string();
        let out = run_strs(&["estimate", &path, "--sequential"]).unwrap();
        assert!(out.contains("registers"));
        assert!(out.contains("fixed point"));
    }

    #[test]
    fn blif_files_are_autodetected() {
        let dir = std::env::temp_dir().join("swact_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mux.blif");
        std::fs::write(
            &path,
            ".model mux\n.inputs s a b\n.outputs y\n.names s a b y\n01- 1\n1-1 1\n.end\n",
        )
        .unwrap();
        let path = path.to_string_lossy().to_string();
        let out = run_strs(&["estimate", &path]).unwrap();
        assert!(out.contains("mean switching"));
        // Sequential BLIF through the flag.
        let seq_path = dir.join("reg.blif");
        std::fs::write(
            &seq_path,
            ".model reg\n.inputs a\n.outputs q\n.latch d q 0\n.names a d\n1 1\n.end\n",
        )
        .unwrap();
        let seq_path = seq_path.to_string_lossy().to_string();
        let out = run_strs(&["estimate", &seq_path, "--sequential"]).unwrap();
        assert!(out.contains("1 registers"));
    }

    #[test]
    fn csv_output_is_machine_readable() {
        let out = run_strs(&["estimate", "c17", "--csv"]).unwrap();
        let mut lines = out.lines();
        assert!(lines.next().unwrap().starts_with("line,"));
        assert_eq!(lines.count(), 11); // 5 inputs + 6 gates
    }

    #[test]
    fn batch_sweep_is_identical_across_job_counts() {
        let serial = run_strs(&["batch", "c17", "--jobs", "1", "--sweep", "6"]).unwrap();
        let parallel = run_strs(&["batch", "c17", "--jobs", "4", "--sweep", "6"]).unwrap();
        assert_eq!(serial, parallel);
        assert!(serial.contains("6 scenario(s)"));
        let csv_serial =
            run_strs(&["batch", "c17", "--jobs", "1", "--sweep", "5", "--csv"]).unwrap();
        let csv_parallel =
            run_strs(&["batch", "c17", "--jobs", "4", "--sweep", "5", "--csv"]).unwrap();
        assert_eq!(csv_serial, csv_parallel);
        assert!(csv_serial.starts_with("scenario,p1_mean,mean_switching,"));
        assert_eq!(csv_serial.lines().count(), 6); // header + 5 scenarios
    }

    #[test]
    fn batch_reads_scenarios_from_spec_file() {
        let dir = std::env::temp_dir().join("swact_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("scenarios.spec");
        // c17 has 5 inputs: one broadcast line, one per-input line, comments.
        std::fs::write(
            &path,
            "# quiet then busy\n0.1\n0.2, 0.3 0.4,0.5 0.6   # per-input\n\n",
        )
        .unwrap();
        let path = path.to_string_lossy().to_string();
        let out = run_strs(&["batch", "c17", "--spec", &path, "--jobs", "2"]).unwrap();
        assert!(out.contains("2 scenario(s)"));

        let bad = dir.join("bad.spec");
        std::fs::write(&bad, "0.1 0.2\n").unwrap(); // 2 values for 5 inputs
        let bad = bad.to_string_lossy().to_string();
        let err = run_strs(&["batch", "c17", "--spec", &bad]).unwrap_err();
        assert_eq!(err.exit_code, 1);
        assert!(err.message.contains("expected 1 or 5 values"));
    }

    #[test]
    fn batch_stats_flag_reports_cache_and_timings() {
        let out = run_strs(&["batch", "c17", "--sweep", "3", "--stats"]).unwrap();
        assert!(out.contains("cache miss"));
        assert!(out.contains("scenarios/s"));
        assert!(out.contains("requests 3 (0 failed)"));
        assert!(out.contains("stages: plan"));
        assert!(out.contains("forward"));
        assert!(out.contains("reuse:"));
        assert!(out.contains("memo-skipped"));
    }

    #[test]
    fn batch_jobs_force_and_no_incremental_flags() {
        // Forced oversubscription still produces the same deterministic
        // body as the default engine.
        let forced = run_strs(&["batch", "c17", "--jobs-force", "3", "--sweep", "4"]).unwrap();
        let plain = run_strs(&["batch", "c17", "--sweep", "4"]).unwrap();
        assert_eq!(forced, plain);

        // Cold (non-incremental) runs are bit-identical to warm ones.
        let cold =
            run_strs(&["batch", "c17", "--sweep", "4", "--no-incremental", "--csv"]).unwrap();
        let warm = run_strs(&["batch", "c17", "--sweep", "4", "--csv"]).unwrap();
        assert_eq!(cold, warm);

        // A cold run reports no reuse.
        let stats = run_strs(&[
            "batch",
            "c17",
            "--sweep",
            "3",
            "--no-incremental",
            "--stats",
        ])
        .unwrap();
        assert!(stats.contains("reuse: 0 message(s) cached"));
        assert!(stats.contains("0 segment(s) memo-skipped"));

        let err = run_strs(&["batch", "c17", "--jobs-force", "many"]).unwrap_err();
        assert_eq!(err.exit_code, 2);
        assert!(err.message.contains("bad --jobs-force value"));
    }

    #[test]
    fn batch_rejects_bad_flags() {
        assert_eq!(run_strs(&["batch"]).unwrap_err().exit_code, 2);
        assert_eq!(
            run_strs(&["batch", "c17", "--jobs"]).unwrap_err().exit_code,
            2
        );
        assert_eq!(
            run_strs(&["batch", "c17", "--jobs", "many"])
                .unwrap_err()
                .exit_code,
            2
        );
        assert_eq!(
            run_strs(&["batch", "c17", "--sweep", "0"])
                .unwrap_err()
                .exit_code,
            2
        );
    }

    #[test]
    fn budget_flags_degrade_and_report() {
        // A 256-state cap forces the ladder on c432; the report announces
        // itself in the header.
        let out = run_strs(&["estimate", "c432", "--budget-states", "256"]).unwrap();
        assert!(out.contains("degraded: segment"));
        assert!(out.contains("mean switching activity"));

        // Without a cap the degraded lines are absent.
        let plain = run_strs(&["estimate", "c432"]).unwrap();
        assert!(!plain.contains("degraded:"));

        // --no-fallback turns the same cap into a runtime error.
        let err = run_strs(&[
            "estimate",
            "c432",
            "--budget-states",
            "256",
            "--no-fallback",
        ])
        .unwrap_err();
        assert_eq!(err.exit_code, 1);
        assert!(err.message.contains("budget"), "message = {}", err.message);
    }

    #[test]
    fn batch_stats_reports_degradations() {
        let out = run_strs(&[
            "batch",
            "c432",
            "--sweep",
            "3",
            "--budget-states",
            "256",
            "--stats",
        ])
        .unwrap();
        assert!(out.contains("3 degraded scenario(s)"));
        assert!(!out.contains("error:"));
        // The per-rung summary names each ladder rung with its count.
        assert!(out.contains("rungs:"), "got: {out}");
        assert!(out.contains("replanned"));
        assert!(out.contains("sampling"));
        assert!(out.contains("twostate"));
        // Non-stats output stays free of robustness lines.
        let quiet = run_strs(&["batch", "c432", "--sweep", "3", "--budget-states", "256"]).unwrap();
        assert!(!quiet.contains("robustness:"));
        assert!(!quiet.contains("rungs:"));
    }

    #[test]
    fn deadline_flag_parses_and_passes_through() {
        // A generous deadline changes nothing about the result table.
        let plain = run_strs(&["estimate", "c17"]).unwrap();
        let deadlined = run_strs(&["estimate", "c17", "--deadline-ms", "60000"]).unwrap();
        let table = |s: &str| s.lines().skip(1).collect::<Vec<_>>().join("\n");
        assert_eq!(table(&plain), table(&deadlined));

        for cmd in ["estimate", "batch"] {
            let err = run_strs(&[cmd, "c17", "--deadline-ms", "soon"]).unwrap_err();
            assert_eq!(err.exit_code, 2);
            assert!(err.message.contains("bad --deadline-ms value"));
            let err = run_strs(&[cmd, "c17", "--budget-states", "lots"]).unwrap_err();
            assert_eq!(err.exit_code, 2);
            assert!(err.message.contains("bad --budget-states value"));
        }
    }

    #[test]
    fn compare_runs_all_methods() {
        let out = run_strs(&["compare", "c17", "--pairs", "65536"]).unwrap();
        assert!(out.contains("bayesian-network"));
        assert!(out.contains("pairwise-correlation"));
        assert!(out.contains("independence"));
        assert!(out.contains("transition-density"));
    }

    #[test]
    fn serve_rejects_bad_flags_without_binding() {
        let err = run_strs(&["serve", "--port", "80"]).unwrap_err();
        assert_eq!(err.exit_code, 2);
        assert!(err.message.contains("unknown serve option"));
        let err = run_strs(&["serve", "--jobs"]).unwrap_err();
        assert!(err.message.contains("--jobs needs a value"));
        let err = run_strs(&["serve", "--clients-config", "/no/such/file"]).unwrap_err();
        assert_eq!(err.exit_code, 1);
        assert!(err.message.contains("cannot read"));
    }

    #[test]
    fn serve_full_cycle_over_an_ephemeral_port() {
        use std::io::{Read as _, Write as _};

        let dir = std::env::temp_dir();
        let tag = std::process::id();
        let addr_file = dir.join(format!("swact-serve-test-{tag}.addr"));
        let config_file = dir.join(format!("swact-serve-test-{tag}.json"));
        std::fs::write(
            &config_file,
            r#"{"clients": {"blocked": {"max_in_flight": 0}}}"#,
        )
        .unwrap();

        let args: Vec<String> = [
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--jobs",
            "1",
            "--handlers",
            "2",
            "--drain-ms",
            "3000",
            "--addr-file",
            addr_file.to_str().unwrap(),
            "--clients-config",
            config_file.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let serve = std::thread::spawn(move || run(&args));

        // The server writes its bound address once listening.
        let addr = {
            let mut tries = 0;
            loop {
                if let Ok(text) = std::fs::read_to_string(&addr_file) {
                    if !text.is_empty() {
                        break text;
                    }
                }
                tries += 1;
                assert!(tries < 500, "server never wrote its address file");
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
        };

        let exchange = |request: String| -> String {
            let mut stream = std::net::TcpStream::connect(&addr).expect("connect");
            stream.write_all(request.as_bytes()).expect("send");
            let mut raw = String::new();
            stream.read_to_string(&mut raw).expect("read");
            raw
        };

        let estimate = exchange(format!(
            "POST /v1/estimate HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{}",
            r#"{"circuit":"c17"}"#.len(),
            r#"{"circuit":"c17"}"#
        ));
        assert!(estimate.starts_with("HTTP/1.1 200"), "got: {estimate}");
        assert!(estimate.contains("\"circuit\":\"c17\""));

        let blocked = exchange(format!(
            "POST /v1/estimate HTTP/1.1\r\nHost: t\r\nX-Swact-Client: blocked\r\nContent-Length: {}\r\n\r\n{}",
            r#"{"circuit":"c17"}"#.len(),
            r#"{"circuit":"c17"}"#
        ));
        assert!(blocked.starts_with("HTTP/1.1 429"), "got: {blocked}");

        let stop = exchange(
            "POST /admin/shutdown HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n".to_string(),
        );
        assert!(stop.starts_with("HTTP/1.1 202"), "got: {stop}");

        let out = serve.join().expect("serve thread").expect("clean exit");
        assert!(out.contains("shut down cleanly"), "got: {out}");
        assert!(out.contains("1 scenarios served"), "got: {out}");

        std::fs::remove_file(&addr_file).ok();
        std::fs::remove_file(&config_file).ok();
    }

    fn temp_cache_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("swact-cli-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn swact_files(dir: &std::path::Path) -> Vec<std::path::PathBuf> {
        let mut files: Vec<_> = std::fs::read_dir(dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "swact"))
            .collect();
        files.sort();
        files
    }

    #[test]
    fn estimate_cache_dir_warm_starts_bit_identically() {
        let dir = temp_cache_dir("estimate");
        let dir_str = dir.to_str().unwrap();

        let cold = run_strs(&["estimate", "c17", "--cache-dir", dir_str, "--csv"]).unwrap();
        assert_eq!(swact_files(&dir).len(), 1, "one artifact persisted");

        let warm = run_strs(&["estimate", "c17", "--cache-dir", dir_str, "--csv"]).unwrap();
        assert_eq!(cold, warm, "warm start must be bit-identical");
        assert_eq!(swact_files(&dir).len(), 1, "warm start writes nothing new");

        // A different model (other backend) gets its own artifact.
        let bdd = run_strs(&[
            "estimate",
            "c17",
            "--cache-dir",
            dir_str,
            "--csv",
            "--backend",
            "bdd",
        ])
        .unwrap();
        assert_eq!(cold, bdd, "exact backends agree on c17");
        assert_eq!(swact_files(&dir).len(), 2, "distinct model key per backend");

        // A different sweep point reuses the same artifact: probabilities
        // are not part of the model key.
        run_strs(&[
            "estimate",
            "c17",
            "--cache-dir",
            dir_str,
            "--csv",
            "--p1",
            "0.3",
        ])
        .unwrap();
        assert_eq!(swact_files(&dir).len(), 2);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn estimate_cache_dir_recovers_from_corruption() {
        let dir = temp_cache_dir("corrupt");
        let dir_str = dir.to_str().unwrap();

        let cold = run_strs(&["estimate", "c17", "--cache-dir", dir_str, "--csv"]).unwrap();
        let artifact = swact_files(&dir).pop().unwrap();
        let bytes = std::fs::read(&artifact).unwrap();
        std::fs::write(&artifact, &bytes[..bytes.len() / 2]).unwrap();

        // The truncated artifact is rejected, recompiled, and re-persisted.
        let recovered = run_strs(&["estimate", "c17", "--cache-dir", dir_str, "--csv"]).unwrap();
        assert_eq!(cold, recovered);
        assert!(swact::artifact::verify_artifact(&artifact).is_ok());

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_cache_dir_warm_starts_bit_identically() {
        let dir = temp_cache_dir("batch");
        let dir_str = dir.to_str().unwrap();

        let cold = run_strs(&[
            "batch",
            "c17",
            "--cache-dir",
            dir_str,
            "--csv",
            "--sweep",
            "3",
        ])
        .unwrap();
        assert_eq!(swact_files(&dir).len(), 1);
        let warm = run_strs(&[
            "batch",
            "c17",
            "--cache-dir",
            dir_str,
            "--csv",
            "--sweep",
            "3",
        ])
        .unwrap();
        assert_eq!(cold, warm, "warm batch must be bit-identical");

        let stats = run_strs(&[
            "batch",
            "c17",
            "--cache-dir",
            dir_str,
            "--sweep",
            "3",
            "--stats",
        ])
        .unwrap();
        assert!(
            stats.contains("artifacts: 1 loaded from disk; 0 persisted; 0 rejected"),
            "got: {stats}"
        );

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cache_subcommand_lists_verifies_and_removes() {
        let dir = temp_cache_dir("subcommand");
        let dir_str = dir.to_str().unwrap();
        run_strs(&["estimate", "c17", "--cache-dir", dir_str, "--csv"]).unwrap();
        run_strs(&[
            "estimate",
            "c17",
            "--cache-dir",
            dir_str,
            "--csv",
            "--backend",
            "twostate",
        ])
        .unwrap();

        let ls = run_strs(&["cache", "ls", dir_str]).unwrap();
        assert!(ls.contains("2 artifact(s)"), "got: {ls}");
        assert!(ls.contains(&format!("workspace {}", env!("CARGO_PKG_VERSION"))));

        let verify = run_strs(&["cache", "verify", dir_str]).unwrap();
        assert!(
            verify.contains("2 artifact(s) verified, 0 failed"),
            "got: {verify}"
        );

        // Corrupt one artifact: verify fails with exit code 1 and names it.
        let victim = swact_files(&dir).remove(0);
        let key = swact::artifact::parse_artifact_file_name(
            victim.file_name().unwrap().to_str().unwrap(),
        )
        .unwrap();
        let bytes = std::fs::read(&victim).unwrap();
        std::fs::write(&victim, &bytes[..bytes.len() - 1]).unwrap();
        let err = run_strs(&["cache", "verify", dir_str]).unwrap_err();
        assert_eq!(err.exit_code, 1);
        assert!(err.message.contains("FAIL"), "got: {}", err.message);

        // Remove just the corrupt one by key, then everything.
        let rm_one = run_strs(&["cache", "rm", dir_str, "--key", &format!("{key:032x}")]).unwrap();
        assert!(rm_one.contains("removed 1 artifact(s)"), "got: {rm_one}");
        assert_eq!(swact_files(&dir).len(), 1);
        let rm_all = run_strs(&["cache", "rm", dir_str]).unwrap();
        assert!(rm_all.contains("removed 1 artifact(s)"), "got: {rm_all}");
        assert!(swact_files(&dir).is_empty());

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cache_subcommand_rejects_bad_usage() {
        let dir = temp_cache_dir("usage");
        assert_eq!(run_strs(&["cache"]).unwrap_err().exit_code, 2);
        assert_eq!(run_strs(&["cache", "ls"]).unwrap_err().exit_code, 2);
        assert_eq!(
            run_strs(&["cache", "frobnicate", "somewhere"])
                .unwrap_err()
                .exit_code,
            2
        );
        let dir_str = dir.to_str().unwrap();
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(
            run_strs(&["cache", "ls", dir_str, "--key", "ff"])
                .unwrap_err()
                .exit_code,
            2,
            "--key only applies to rm"
        );
        assert_eq!(
            run_strs(&["cache", "rm", dir_str, "--key", "zz"])
                .unwrap_err()
                .exit_code,
            2,
            "non-hex key is a usage error"
        );
        let err = run_strs(&["cache", "rm", dir_str, "--key", "ff"]).unwrap_err();
        assert_eq!(err.exit_code, 1, "absent key is a runtime error");
        assert!(err.message.contains("no artifact"));
        // A nonexistent directory is a runtime error, not a panic.
        let missing = dir.join("missing").to_str().unwrap().to_string();
        assert_eq!(
            run_strs(&["cache", "ls", &missing]).unwrap_err().exit_code,
            1
        );

        assert_eq!(
            run_strs(&["estimate", "c17", "--sequential", "--cache-dir", dir_str])
                .unwrap_err()
                .exit_code,
            2,
            "--cache-dir and --sequential are incompatible"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
