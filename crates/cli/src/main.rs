//! `swact` — command-line switching-activity and power estimation.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match swact_cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(error) => {
            eprintln!("{error}");
            std::process::exit(error.exit_code);
        }
    }
}
