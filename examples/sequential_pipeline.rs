//! Sequential estimation: a registered datapath analyzed by fixed-point
//! iteration over the state-line statistics, cross-checked against
//! frame-by-frame sequential simulation.
//!
//! ```text
//! cargo run --release --example sequential_pipeline
//! ```

use swact::sequential::{estimate_sequential, SequentialOptions};
use swact::InputSpec;
use swact_circuit::sequential::parse_bench_sequential;
use swact_sim::{measure_activity_sequential, StreamModel};

const PIPELINE: &str = "
    # 3-stage pipelined reduction: r = (a & b) | c, registered twice.
    INPUT(a)
    INPUT(b)
    INPUT(c)
    OUTPUT(r)
    q0 = DFF(s0)
    q1 = DFF(s1)
    q2 = DFF(s2)
    s0 = AND(a, b)
    s1 = OR(q0, c)
    s2 = XOR(q1, q0)
    r  = BUF(q2)
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seq = parse_bench_sequential("pipeline3", PIPELINE)?;
    println!(
        "pipeline3: {} primary inputs, {} registers, {} gates in the core\n",
        seq.num_primary_inputs(),
        seq.registers().len(),
        seq.core().num_gates()
    );

    let spec = InputSpec::independent([0.5, 0.4, 0.2]);
    let result = estimate_sequential(&seq, &spec, &SequentialOptions::default())?;
    println!(
        "fixed point after {} iterations (converged: {})\n",
        result.iterations, result.converged
    );

    // Cross-check against sequential simulation.
    let model = StreamModel::independent([0.5, 0.4, 0.2]);
    let sim = measure_activity_sequential(&seq, &model, 1 << 18, 1 << 9, 42);

    println!(
        "{:<8} {:>12} {:>12} {:>10}",
        "line", "estimated", "simulated", "|diff|"
    );
    for line in seq.core().line_ids() {
        let est = result.estimate.switching(line);
        let truth = sim.switching[line.index()];
        println!(
            "{:<8} {:>12.4} {:>12.4} {:>10.4}",
            seq.core().line_name(line),
            est,
            truth,
            (est - truth).abs()
        );
    }
    println!("\n(per-register marginals are exact for feed-forward state; lines");
    println!("combining several register outputs, like the XOR stage here, keep a");
    println!("small residual from cross-frame slice sharing — see the module docs)");
    Ok(())
}
