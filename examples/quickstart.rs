//! Quickstart: estimate switching activity and dynamic power for the
//! ISCAS-85 `c17` benchmark under uniform random inputs.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use swact::{estimate, InputSpec, Options, PowerModel};
use swact_circuit::catalog;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Load a circuit (parse_bench() reads any ISCAS .bench file).
    let circuit = catalog::c17();
    println!(
        "circuit {}: {} inputs, {} gates, {} outputs",
        circuit.name(),
        circuit.num_inputs(),
        circuit.num_gates(),
        circuit.num_outputs()
    );

    // 2. Describe the input statistics: uniform random streams.
    let spec = InputSpec::uniform(circuit.num_inputs());

    // 3. Estimate. c17 fits one exact Bayesian network.
    let estimate = estimate(&circuit, &spec, &Options::default())?;
    println!(
        "\ncompiled {} Bayesian network(s) in {:?}; propagated in {:?}\n",
        estimate.num_segments(),
        estimate.compile_time(),
        estimate.propagate_time()
    );

    println!("{:<6} {:>10} {:>12}", "line", "P(switch)", "P(line = 1)");
    for line in circuit.line_ids() {
        println!(
            "{:<6} {:>10.4} {:>12.4}",
            circuit.line_name(line),
            estimate.switching(line),
            estimate.signal_probability(line)
        );
    }

    // 4. Convert to dynamic power.
    let power = PowerModel::default().power(&circuit, &estimate);
    println!(
        "\naverage dynamic power: {:.2} µW at {} V / {} MHz",
        power.total_watts * 1e6,
        3.3,
        100
    );
    Ok(())
}
