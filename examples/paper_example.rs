//! Walks through the paper's running example (Figures 1–4 and Eq. 7):
//! builds the five-gate circuit, its LIDAG Bayesian network, compiles the
//! junction tree, and prints the switching estimate for every line —
//! including the conditional-probability reading quoted in §4
//! (`P(X5 = x01 | X1 = x01, X2 = x00) = 1` for the OR gate).
//!
//! ```text
//! cargo run --release --example paper_example
//! ```

use swact::{estimate, gate_cpt, InputSpec, Lidag, Options, Transition};
use swact_bayesnet::JunctionTree;
use swact_circuit::{catalog, GateKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = catalog::paper_example();
    let spec = InputSpec::uniform(4);

    // The LIDAG factorization of Eq. 7.
    let lidag = Lidag::build(&circuit, &spec, 4)?;
    println!("Eq. 7 factorization:");
    print!("P(x1..x9) =");
    let mut lines: Vec<_> = circuit.line_ids().collect();
    lines.reverse();
    for line in lines {
        let var = lidag.var_by_name(circuit.line_name(line)).expect("mapped");
        let parents = lidag.net().parents(var);
        if parents.is_empty() {
            print!(" P(x{})", circuit.line_name(line));
        } else {
            let names: Vec<String> = parents
                .iter()
                .map(|&p| format!("x{}", lidag.net().name(p)))
                .collect();
            print!(" P(x{}|{})", circuit.line_name(line), names.join(","));
        }
    }
    println!("\n");

    // §4's OR-gate CPT entry.
    let or_cpt = gate_cpt(GateKind::Or, 2);
    let row = Transition::Rise.index() * 4 + Transition::Stable0.index();
    println!(
        "P(X5 = x01 | X1 = x01, X2 = x00) = {} (OR gate, as stated in §4)\n",
        or_cpt.as_rows()[row][Transition::Rise.index()]
    );

    // Compilation: junction tree of cliques (Figure 4).
    let tree = JunctionTree::compile(lidag.net())?;
    println!(
        "junction tree: {} cliques, {} sepsets, {} fill edge(s)",
        tree.num_cliques(),
        tree.num_edges(),
        tree.fill_edges()
    );
    for i in 0..tree.num_cliques() {
        let members: Vec<String> = tree
            .clique(i)
            .iter()
            .map(|&v| format!("X{}", lidag.net().name(v)))
            .collect();
        println!("  C{i}: {{{}}}", members.join(", "));
    }

    // Full estimate.
    let est = estimate(&circuit, &spec, &Options::default())?;
    println!(
        "\n{:<6} {:>10} distribution [x00 x01 x10 x11]",
        "line", "P(switch)"
    );
    for line in circuit.line_ids() {
        println!(
            "{:<6} {:>10.4} {}",
            circuit.line_name(line),
            est.switching(line),
            est.distribution(line)
        );
    }
    Ok(())
}
