//! Correlated primary inputs — the paper's §7 future work in action.
//!
//! Two bus lines share a latent stream (think: adjacent bits of a counter
//! value or one-hot control lines). The estimator models the group
//! exactly; ignoring the correlation misestimates every downstream line.
//! Also demos the most-probable-transition query (max-product MPE over
//! the LIDAG).
//!
//! ```text
//! cargo run --release --example correlated_inputs
//! ```

use swact::{estimate, InputGroup, InputModel, InputSpec, Lidag, Options};
use swact_circuit::catalog;
use swact_sim::{measure_activity, SignalModel, SpatialGroup, StreamModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = catalog::c17();
    let n = circuit.num_inputs();
    let copy_prob = 0.9;

    // Inputs 0 and 1 copy a shared latent stream 90% of the time.
    let spec = InputSpec::uniform(n).with_groups(vec![InputGroup {
        members: vec![0, 1],
        latent: InputModel::independent(0.5),
        copy_prob,
    }]);
    let blind_spec = InputSpec::uniform(n);

    // Matching generative model for the simulator.
    let model = StreamModel {
        signals: vec![SignalModel::independent(0.5); n],
        groups: vec![SpatialGroup {
            members: vec![0, 1],
            latent: SignalModel::independent(0.5),
            copy_prob,
        }],
    };
    let truth = measure_activity(&circuit, &model, 1 << 20, 2001);

    let aware = estimate(&circuit, &spec, &Options::default())?;
    let blind = estimate(&circuit, &blind_spec, &Options::default())?;

    println!("c17 with inputs 1 & 2 sharing a latent stream (copy prob {copy_prob}):\n");
    println!(
        "{:<6} {:>10} {:>12} {:>12}",
        "line", "simulated", "group-aware", "group-blind"
    );
    for line in circuit.line_ids() {
        println!(
            "{:<6} {:>10.4} {:>12.4} {:>12.4}",
            circuit.line_name(line),
            truth.switching[line.index()],
            aware.switching(line),
            blind.switching(line)
        );
    }
    let aware_stats = aware.compare(&truth.switching);
    let blind_stats = blind.compare(&truth.switching);
    println!("\ngroup-aware error: {aware_stats}");
    println!("group-blind error: {blind_stats}");

    // The most probable single-cycle behaviour of the whole circuit.
    let lidag = Lidag::build(&circuit, &spec, 4)?;
    let (pattern, p) = lidag.most_probable_transitions()?;
    println!("\nmost probable transition pattern (P = {p:.4}):");
    for line in circuit.line_ids() {
        println!("  {:<6} {}", circuit.line_name(line), pattern[line.index()]);
    }
    Ok(())
}
