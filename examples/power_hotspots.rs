//! Power-hotspot analysis: rank the most active (and most power-hungry)
//! lines of a benchmark, compare two operating scenarios, and cross-check
//! the estimate against logic simulation — the workload the paper's
//! introduction motivates (driving low-power design decisions).
//!
//! ```text
//! cargo run --release --example power_hotspots [benchmark]
//! ```

use swact::{estimate, InputModel, InputSpec, Options, PowerModel};
use swact_circuit::catalog;
use swact_sim::{measure_activity, StreamModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "c880".to_string());
    let circuit = catalog::benchmark(&name).ok_or("unknown benchmark")?;
    println!(
        "{}: {} inputs, {} gates\n",
        circuit.name(),
        circuit.num_inputs(),
        circuit.num_gates()
    );

    // Scenario A: busy bus (uniform random), scenario B: idle-ish traffic.
    let busy = InputSpec::uniform(circuit.num_inputs());
    let idle = InputSpec::from_models(vec![InputModel::new(0.5, 0.05)?; circuit.num_inputs()]);
    let model = PowerModel::default();

    for (label, spec) in [("busy", &busy), ("idle", &idle)] {
        let est = estimate(&circuit, spec, &Options::default())?;
        let power = model.power(&circuit, &est);
        println!(
            "scenario `{label}`: mean switching {:.4}, power {:.2} µW",
            est.mean_switching(),
            power.total_watts * 1e6
        );
        println!("  hottest lines:");
        for (line, watts) in power.hottest(5) {
            println!(
                "    {:<8} {:>8.3} µW  (switching {:.4}, fanout {})",
                circuit.line_name(line),
                watts * 1e6,
                est.switching(line),
                circuit.fanout_counts()[line.index()]
            );
        }
    }

    // Cross-check the busy scenario against simulation.
    let est = estimate(&circuit, &busy, &Options::default())?;
    let sim = measure_activity(
        &circuit,
        &StreamModel::uniform(circuit.num_inputs()),
        1 << 19,
        7,
    );
    let stats = est.compare(&sim.switching);
    println!("\nestimate vs {}-pair simulation: {stats}", sim.pairs);
    Ok(())
}
