//! Precompile once, re-estimate for many input statistics — the workflow
//! the paper highlights in §6 ("the circuits can be precompiled, only
//! propagation has to be done for different input statistics").
//!
//! Sweeps the inputs' switching activity on `c432` and reports how the
//! circuit's average activity and power respond, reusing one compiled
//! estimator throughout.
//!
//! ```text
//! cargo run --release --example input_sensitivity
//! ```

use swact::{CompiledEstimator, InputModel, InputSpec, Options, PowerModel};
use swact_circuit::catalog;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = catalog::benchmark("c432").expect("known benchmark");
    let compiled = CompiledEstimator::compile(&circuit, &Options::default())?;
    println!(
        "compiled {} ({} gates) into {} Bayesian networks in {:?}\n",
        circuit.name(),
        circuit.num_gates(),
        compiled.num_segments(),
        compiled.compile_time()
    );
    println!(
        "{:>16} {:>16} {:>12} {:>12}",
        "input activity", "mean switching", "power (µW)", "update time"
    );
    let power_model = PowerModel::default();
    for activity in [0.5, 0.4, 0.3, 0.2, 0.1, 0.05, 0.01] {
        let spec =
            InputSpec::from_models(vec![InputModel::new(0.5, activity)?; circuit.num_inputs()]);
        let estimate = compiled.estimate(&spec)?;
        let power = power_model.power(&circuit, &estimate);
        println!(
            "{:>16.2} {:>16.4} {:>12.2} {:>12?}",
            activity,
            estimate.mean_switching(),
            power.total_watts * 1e6,
            estimate.propagate_time()
        );
    }
    println!("\nNote: only the first line paid compilation; every row reused the");
    println!("junction trees and re-ran propagation alone.");
    Ok(())
}
