//! End-to-end fault-injection tests (the `fault-inject` feature).
//!
//! The robustness contract under test: with faults injected into a batch,
//! the non-faulted scenarios complete **bit-identically** to a fault-free
//! run, the faulted ones surface structured errors or degraded estimates,
//! and the engine neither crashes nor hangs in `wait`.
//!
//! Injected panics and deadlines are retryable, and the engine retries
//! twice with backoff — so tests that want a scenario to *fail* arm the
//! same one-shot fault three times (initial attempt + two retries), and
//! tests that arm it fewer times assert the retry *recovers*.
#![cfg(feature = "fault-inject")]

use std::time::Duration;

use swact::faults::{arm, FaultAction, FaultPlan};
use swact::{Budget, CompiledEstimator, EstimateError, InputSpec, Options};
use swact_circuit::catalog;
use swact_engine::Engine;

fn specs_for(circuit: &swact_circuit::Circuit, n: usize) -> Vec<InputSpec> {
    (0..n)
        .map(|i| {
            let p = 0.3 + 0.1 * i as f64;
            InputSpec::independent(vec![p; circuit.num_inputs()])
        })
        .collect()
}

/// Holds the process-wide fault serialization lock with an *empty* plan
/// armed. The armed plan is global, so a reference or post-fault run in
/// one test must not observe — or worse, consume — a plan armed by a
/// concurrently running test.
fn quiesce() -> swact::faults::FaultGuard {
    arm(FaultPlan::new())
}

#[test]
fn injected_worker_panic_fails_one_scenario_and_spares_the_rest() {
    let circuit = catalog::c17();
    let specs = specs_for(&circuit, 4);
    let options = Options::default();

    // Fault-free reference first (separate engine, empty plan armed).
    let reference = {
        let _quiet = quiesce();
        Engine::with_jobs(1)
            .estimate_batch(&circuit, &specs, &options)
            .expect("reference batch")
    };
    assert!(reference.all_ok());

    let engine = Engine::with_jobs(1);
    {
        // Three one-shot panics: the initial attempt and both retries of
        // scenario 1 must all blow up for the error to become final.
        let _guard = arm(FaultPlan::new()
            .fault_at("engine:job", 1, FaultAction::Panic)
            .fault_at("engine:job", 1, FaultAction::Panic)
            .fault_at("engine:job", 1, FaultAction::Panic));
        let report = engine
            .estimate_batch(&circuit, &specs, &options)
            .expect("batch-level compile is unaffected");

        for (item, ref_item) in report.items.iter().zip(&reference.items) {
            if item.index == 1 {
                match &item.result {
                    Err(EstimateError::Panicked { message }) => {
                        assert!(message.contains("injected fault"), "message = {message}");
                    }
                    other => panic!("scenario 1 should panic, got {other:?}"),
                }
            } else {
                let est = item.result.as_ref().expect("non-faulted scenario");
                let ref_est = ref_item.result.as_ref().expect("reference");
                assert_eq!(est.switching_all(), ref_est.switching_all());
            }
        }
    }

    let metrics = engine.metrics();
    assert_eq!(metrics.jobs_panicked, 3);
    assert_eq!(metrics.retries, 2);
    assert_eq!(metrics.requests_failed, 1);

    // The engine survives: the same batch, disarmed, is fully clean.
    let _quiet = quiesce();
    let clean = engine
        .estimate_batch(&circuit, &specs, &options)
        .expect("post-fault batch");
    assert!(clean.all_ok());
    for (item, ref_item) in clean.items.iter().zip(&reference.items) {
        assert_eq!(
            item.result.as_ref().expect("clean").switching_all(),
            ref_item.result.as_ref().expect("reference").switching_all()
        );
    }
}

#[test]
fn single_injected_panic_is_recovered_by_retry() {
    let circuit = catalog::c17();
    let specs = specs_for(&circuit, 2);
    let options = Options::default();
    let reference = {
        let _quiet = quiesce();
        Engine::with_jobs(1)
            .estimate_batch(&circuit, &specs, &options)
            .expect("reference batch")
    };

    let engine = Engine::with_jobs(1);
    let _guard = arm(FaultPlan::new().fault_at("engine:job", 0, FaultAction::Panic));
    let report = engine
        .estimate_batch(&circuit, &specs, &options)
        .expect("batch");
    assert!(report.all_ok(), "one panic, two retries: must recover");
    for (item, ref_item) in report.items.iter().zip(&reference.items) {
        assert_eq!(
            item.result.as_ref().expect("ok").switching_all(),
            ref_item.result.as_ref().expect("reference").switching_all()
        );
    }
    let metrics = engine.metrics();
    assert_eq!(metrics.jobs_panicked, 1);
    assert_eq!(metrics.retries, 1);
    assert_eq!(metrics.requests_failed, 0);
}

#[test]
fn injected_budget_pressure_degrades_instead_of_failing() {
    let circuit = catalog::benchmark("c432").expect("known benchmark");
    let specs = specs_for(&circuit, 2);
    let options = Options::default();

    let engine = Engine::with_jobs(2);
    let _guard = arm(FaultPlan::new().fault("pipeline:admission", FaultAction::BudgetPressure));
    let report = engine
        .estimate_batch(&circuit, &specs, &options)
        .expect("pressure degrades, never aborts");
    assert!(report.all_ok());
    assert_eq!(report.degraded_scenarios(), specs.len());
    for est in report.estimates() {
        assert!(est.is_degraded());
        assert!(!est.degradations().is_empty());
    }
    assert!(engine.metrics().degraded_segments > 0);
}

#[test]
fn injected_budget_pressure_with_no_fallback_is_a_typed_compile_error() {
    let circuit = catalog::c17();
    let spec = InputSpec::uniform(circuit.num_inputs());
    let options = Options {
        no_fallback: true,
        ..Options::default()
    };
    let _guard = arm(FaultPlan::new().fault("pipeline:admission", FaultAction::BudgetPressure));
    match CompiledEstimator::compile_for(&circuit, &spec, &options) {
        Err(EstimateError::BudgetExceeded { .. }) => {}
        other => panic!("expected BudgetExceeded, got {other:?}"),
    }
}

#[test]
fn injected_stage_delay_trips_the_propagate_deadline() {
    // c17, not a big benchmark: its fault-free compile and propagate are
    // orders of magnitude under the deadline, so only the injected delay
    // can trip it — no flakiness under load.
    let circuit = catalog::c17();
    let spec = InputSpec::uniform(circuit.num_inputs());
    let options = Options::with_resource_budget(Budget::deadline(Duration::from_millis(250)));
    let delay = FaultAction::Delay(Duration::from_millis(600));

    // Undelayed reference under the *same* deadline: deadline checks are
    // cooperative and must never perturb the numbers.
    let reference = {
        let _quiet = quiesce();
        let reference = swact::estimate(&circuit, &spec, &options).expect("reference");
        let undeadlined =
            swact::estimate(&circuit, &spec, &Options::default()).expect("undeadlined reference");
        assert_eq!(reference.switching_all(), undeadlined.switching_all());
        reference
    };

    let engine = Engine::with_jobs(1);
    {
        // Initial attempt + two retries must each stall past the deadline.
        let _guard = arm(FaultPlan::new()
            .fault_at("pipeline:propagate:wave", 0, delay)
            .fault_at("pipeline:propagate:wave", 0, delay)
            .fault_at("pipeline:propagate:wave", 0, delay));
        let report = engine
            .estimate_batch(&circuit, std::slice::from_ref(&spec), &options)
            .expect("compile is fast enough for the deadline");
        match &report.items[0].result {
            Err(EstimateError::DeadlineExceeded { stage, .. }) => {
                assert_eq!(*stage, "propagate");
            }
            other => panic!("expected propagate DeadlineExceeded, got {other:?}"),
        }
    }
    assert_eq!(engine.metrics().retries, 2);

    // Faults exhausted: the same engine finishes the same scenario
    // bit-identically to the fault-free run.
    let _quiet = quiesce();
    let clean = engine
        .estimate_batch(&circuit, &[spec], &options)
        .expect("post-fault batch");
    assert!(clean.all_ok());
    assert_eq!(
        clean.items[0]
            .result
            .as_ref()
            .expect("clean")
            .switching_all(),
        reference.switching_all()
    );
}

#[test]
fn mixed_fault_batches_across_circuits_leave_the_engine_healthy() {
    // The acceptance scenario: one engine, batches over c17/c432/alu2,
    // with a worker panic, a compile-budget exhaustion, and a stage
    // deadline injected — everything not faulted is bit-identical to the
    // fault-free runs, and nothing crashes or hangs.
    let c17 = catalog::c17();
    let c432 = catalog::benchmark("c432").expect("known benchmark");
    let alu2 = catalog::benchmark("alu2").expect("known benchmark");
    let c17_specs = specs_for(&c17, 3);
    let c432_specs = specs_for(&c432, 2);
    let alu2_specs = specs_for(&alu2, 2);
    let plain = Options::default();
    // The deadline rides on c17 (see
    // injected_stage_delay_trips_the_propagate_deadline for why the small
    // circuit): alu2 takes the worker panic, c432 the budget pressure.
    let deadlined = Options::with_resource_budget(Budget::deadline(Duration::from_millis(250)));

    let reference = Engine::with_jobs(1);
    let (c17_ref, alu2_ref) = {
        let _quiet = quiesce();
        (
            reference
                .estimate_batch(&c17, &c17_specs, &deadlined)
                .expect("c17 reference"),
            reference
                .estimate_batch(&alu2, &alu2_specs, &plain)
                .expect("alu2 reference"),
        )
    };

    let engine = Engine::with_jobs(1);
    let delay = FaultAction::Delay(Duration::from_millis(250));

    // Fault points are named per pipeline location, not per circuit, so
    // each batch arms only its own plan — otherwise c432's propagation
    // waves would consume the delay entries meant for alu2.
    {
        let _guard = arm(FaultPlan::new().fault("pipeline:admission", FaultAction::BudgetPressure));
        let c432_report = engine
            .estimate_batch(&c432, &c432_specs, &plain)
            .expect("c432 batch");
        assert!(c432_report.all_ok());
        assert_eq!(c432_report.degraded_scenarios(), c432_specs.len());
    }

    {
        let _guard = arm(FaultPlan::new()
            .fault_at("engine:job", 1, FaultAction::Panic)
            .fault_at("engine:job", 1, FaultAction::Panic)
            .fault_at("engine:job", 1, FaultAction::Panic));
        let alu2_report = engine
            .estimate_batch(&alu2, &alu2_specs, &plain)
            .expect("alu2 batch");
        for (item, ref_item) in alu2_report.items.iter().zip(&alu2_ref.items) {
            if item.index == 1 {
                assert!(matches!(item.result, Err(EstimateError::Panicked { .. })));
            } else {
                assert_eq!(
                    item.result.as_ref().expect("ok").switching_all(),
                    ref_item.result.as_ref().expect("reference").switching_all()
                );
            }
        }
    }

    {
        let _guard = arm(FaultPlan::new()
            .fault_at("pipeline:propagate:wave", 0, delay)
            .fault_at("pipeline:propagate:wave", 0, delay)
            .fault_at("pipeline:propagate:wave", 0, delay));
        // Single scenario: with one worker, scenarios queued behind the
        // three 600 ms delayed attempts would (correctly) be shed by the
        // queue deadline — the clean rerun below covers the full batch.
        let c17_report = engine
            .estimate_batch(&c17, &c17_specs[..1], &deadlined)
            .expect("c17 batch");
        assert!(matches!(
            c17_report.items[0].result,
            Err(EstimateError::DeadlineExceeded { .. })
        ));
    }

    // Engine still healthy: clean reruns of every batch, bit-identical
    // where a fault-free reference exists.
    let _quiet = quiesce();
    let c17_clean = engine
        .estimate_batch(&c17, &c17_specs, &deadlined)
        .expect("c17 clean");
    assert!(c17_clean.all_ok());
    for (item, ref_item) in c17_clean.items.iter().zip(&c17_ref.items) {
        assert_eq!(
            item.result.as_ref().expect("ok").switching_all(),
            ref_item.result.as_ref().expect("reference").switching_all()
        );
    }
    let alu2_clean = engine
        .estimate_batch(&alu2, &alu2_specs, &plain)
        .expect("alu2 clean");
    assert!(alu2_clean.all_ok());
    for (item, ref_item) in alu2_clean.items.iter().zip(&alu2_ref.items) {
        assert_eq!(
            item.result.as_ref().expect("ok").switching_all(),
            ref_item.result.as_ref().expect("reference").switching_all()
        );
    }
    let metrics = engine.metrics();
    assert_eq!(metrics.jobs_panicked, 3);
    assert_eq!(metrics.retries, 4);
    assert_eq!(metrics.requests_failed, 2);
}
