//! End-to-end determinism of the zero-compressed propagation path: an
//! estimate computed with `sparse = on` must be *bit-identical* to
//! `sparse = off` — compression only skips structural zeros, it never
//! reorders or approximates the arithmetic.

use swact::{estimate, CompiledEstimator, InputSpec, Options, SparseMode};
use swact_circuit::{catalog, parse::parse_bench, Circuit};

/// A small reconvergent circuit: both NANDs share input `b`, and their
/// outputs reconverge in `y` — the dependency pattern the paper's
/// Bayesian-network approach exists to capture (and where the junction
/// tree's sepsets actually carry information).
fn reconvergent() -> Circuit {
    let src = "\
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
u = NAND(a, b)
v = NAND(b, c)
w = XOR(u, v)
y = AND(w, u)
";
    parse_bench("reconv", src).expect("reconvergent circuit parses")
}

fn options(sparse: SparseMode) -> Options {
    Options {
        sparse,
        ..Options::default()
    }
}

fn assert_estimates_identical(circuit: &Circuit, spec: &InputSpec) {
    let off = estimate(circuit, spec, &options(SparseMode::Off)).expect("dense estimate");
    for mode in [SparseMode::Auto, SparseMode::On] {
        let on = estimate(circuit, spec, &options(mode)).expect("sparse estimate");
        for line in circuit.line_ids() {
            assert_eq!(
                off.switching(line).to_bits(),
                on.switching(line).to_bits(),
                "{mode} switching differs on {}",
                circuit.line_name(line)
            );
            assert_eq!(
                off.signal_probability(line).to_bits(),
                on.signal_probability(line).to_bits(),
                "{mode} P(1) differs on {}",
                circuit.line_name(line)
            );
        }
        assert_eq!(
            off.mean_switching().to_bits(),
            on.mean_switching().to_bits()
        );
    }
}

#[test]
fn c17_estimates_are_bit_identical_across_sparse_modes() {
    let circuit = catalog::benchmark("c17").unwrap();
    for spec in [
        InputSpec::uniform(circuit.num_inputs()),
        InputSpec::independent(vec![0.1, 0.3, 0.5, 0.7, 0.9]),
    ] {
        assert_estimates_identical(&circuit, &spec);
    }
}

#[test]
fn reconvergent_estimates_are_bit_identical_across_sparse_modes() {
    let circuit = reconvergent();
    for spec in [
        InputSpec::uniform(circuit.num_inputs()),
        InputSpec::independent(vec![0.2, 0.8, 0.4]),
    ] {
        assert_estimates_identical(&circuit, &spec);
    }
}

#[test]
fn gate_circuits_actually_compress() {
    // Truth-table CPTs dominate any gate-level LIDAG, so the compiled
    // estimator must report substantial structural sparsity on c17 —
    // this is the fraction of propagation work the sparse kernels skip.
    let circuit = catalog::benchmark("c17").unwrap();
    let spec = InputSpec::uniform(circuit.num_inputs());
    let auto = CompiledEstimator::compile_for(&circuit, &spec, &options(SparseMode::Auto))
        .expect("compiles");
    assert!(auto.nnz() > 0);
    assert!((auto.nnz() as f64) < auto.total_states());
    assert!(
        auto.zero_fraction() > 0.3,
        "expected deterministic CPTs to zero out a large share, got {}",
        auto.zero_fraction()
    );
    // c17's single-gate cliques are at most 75% zero — under the
    // fused-kernel cost model (`SPARSE_COST_PER_ENTRY` = 5, break-even
    // at 80% zeros) Auto deliberately keeps them dense: the blocked
    // sweeps beat support iteration there (BENCH_sparse.json).
    assert_eq!(auto.compressed_cliques(), 0);

    let on = CompiledEstimator::compile_for(&circuit, &spec, &options(SparseMode::On))
        .expect("compiles");
    assert!(on.compressed_cliques() > 0);

    let off = CompiledEstimator::compile_for(&circuit, &spec, &options(SparseMode::Off))
        .expect("compiles");
    assert_eq!(off.compressed_cliques(), 0);
    // nnz is a property of the potentials, not of the mode.
    assert_eq!(off.nnz(), auto.nnz());
}
