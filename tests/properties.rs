//! Property-based tests spanning the workspace: random circuits through
//! the whole pipeline, with the BDD engine and exhaustive enumeration as
//! oracles.

use proptest::prelude::*;
use swact::{estimate, InputModel, InputSpec, Options, Transition};
use swact_baselines::{BddExact, SwitchingEstimator};
use swact_circuit::benchgen::{generate, GeneratorConfig};
use swact_circuit::parse::parse_bench;
use swact_circuit::write::to_bench;
use swact_circuit::Circuit;

fn small_circuit(seed: u64, inputs: usize, gates: usize) -> Circuit {
    generate(&GeneratorConfig {
        inputs,
        outputs: 1 + gates / 8,
        gates,
        seed,
        ..GeneratorConfig::default_for("prop")
    })
}

/// Exhaustive switching probabilities over all weighted (prev, next) input
/// pairs — the independent oracle for small circuits.
fn exhaustive_switching(circuit: &Circuit, spec: &InputSpec) -> Vec<f64> {
    let n = circuit.num_inputs();
    let order = circuit.topo_order();
    let eval = |assignment: usize| -> Vec<bool> {
        let mut values = vec![false; circuit.num_lines()];
        for (i, &pi) in circuit.inputs().iter().enumerate() {
            values[pi.index()] = assignment >> i & 1 == 1;
        }
        for &line in &order {
            if let Some(g) = circuit.gate(line) {
                values[line.index()] = g.kind.eval(g.inputs.iter().map(|&l| values[l.index()]));
            }
        }
        values
    };
    let mut switching = vec![0.0; circuit.num_lines()];
    for prev in 0..1usize << n {
        let prev_vals = eval(prev);
        for next in 0..1usize << n {
            let mut weight = 1.0;
            for i in 0..n {
                let t = Transition::from_values(prev >> i & 1 == 1, next >> i & 1 == 1);
                weight *= spec.model(i).to_distribution().p(t);
            }
            if weight == 0.0 {
                continue;
            }
            let next_vals = eval(next);
            for line in circuit.line_ids() {
                if prev_vals[line.index()] != next_vals[line.index()] {
                    switching[line.index()] += weight;
                }
            }
        }
    }
    switching
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Single-BN estimation is exact on arbitrary small circuits and input
    /// statistics — the core claim of Theorem 3 put to work.
    #[test]
    fn single_bn_is_exact_on_random_circuits(
        seed in 0u64..1000,
        gates in 4usize..14,
        p1 in proptest::collection::vec(0.05f64..0.95, 5),
        activity_scale in 0.1f64..1.0,
    ) {
        let circuit = small_circuit(seed, 5, gates);
        let spec = InputSpec::from_models(
            p1.iter()
                .map(|&p| {
                    let max = 2.0 * p.min(1.0 - p);
                    InputModel::new(p, max * activity_scale).expect("feasible")
                })
                .collect(),
        );
        let est = estimate(&circuit, &spec, &Options::single_bn()).expect("compiles");
        let exact = exhaustive_switching(&circuit, &spec);
        for line in circuit.line_ids() {
            prop_assert!(
                (est.switching(line) - exact[line.index()]).abs() < 1e-9,
                "line {} differs: {} vs {}",
                circuit.line_name(line),
                est.switching(line),
                exact[line.index()]
            );
        }
    }

    /// The junction-tree estimator and the BDD engine agree — two
    /// independent exact algorithms with disjoint code paths.
    #[test]
    fn bn_and_bdd_agree(seed in 0u64..1000, gates in 4usize..16) {
        let circuit = small_circuit(seed, 6, gates);
        let spec = InputSpec::from_models(
            (0..6).map(|i| InputModel::new(0.5, 0.1 + 0.05 * i as f64).unwrap()).collect(),
        );
        let bn = estimate(&circuit, &spec, &Options::single_bn()).expect("compiles");
        let bdd = BddExact::default().estimate(&circuit, &spec).expect("fits");
        for line in circuit.line_ids() {
            prop_assert!((bn.switching(line) - bdd[line.index()]).abs() < 1e-9);
        }
    }

    /// Segmented estimation converges to the exact answer and always
    /// yields valid distributions.
    #[test]
    fn segmented_estimates_are_valid_distributions(
        seed in 0u64..1000,
        gates in 10usize..40,
        budget_exp in 8u32..16,
    ) {
        let circuit = small_circuit(seed, 8, gates);
        let spec = InputSpec::uniform(8);
        let options = Options {
            segment_budget: 1usize << budget_exp,
            check_interval: 1,
            ..Options::default()
        };
        let est = estimate(&circuit, &spec, &options).expect("compiles");
        for line in circuit.line_ids() {
            let d = est.distribution(line).as_array();
            let sum: f64 = d.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
            prop_assert!(d.iter().all(|&p| (-1e-12..=1.0).contains(&p)));
            prop_assert!(est.distribution(line).is_stationary(1e-6));
        }
    }

    /// `.bench` serialization round-trips any generated circuit.
    #[test]
    fn bench_round_trip(seed in 0u64..10_000, inputs in 2usize..10, gates in 2usize..40) {
        let circuit = generate(&GeneratorConfig {
            inputs,
            outputs: 1 + gates / 10,
            gates,
            seed,
            ..GeneratorConfig::default_for("roundtrip")
        });
        let text = to_bench(&circuit);
        let back = parse_bench(circuit.name(), &text).expect("parses");
        prop_assert_eq!(back.num_lines(), circuit.num_lines());
        prop_assert_eq!(back.num_inputs(), circuit.num_inputs());
        prop_assert_eq!(back.num_outputs(), circuit.num_outputs());
        for line in circuit.line_ids() {
            let name = circuit.line_name(line);
            let other = back.find_line(name).expect("line survives");
            match (circuit.gate(line), back.gate(other)) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    prop_assert_eq!(a.kind, b.kind);
                    let an: Vec<_> =
                        a.inputs.iter().map(|&i| circuit.line_name(i)).collect();
                    let bn: Vec<_> = b.inputs.iter().map(|&i| back.line_name(i)).collect();
                    prop_assert_eq!(an, bn);
                }
                _ => prop_assert!(false, "driver class changed for {}", name),
            }
        }
    }

    /// Simulation converges to the exact BDD switching probability.
    #[test]
    fn simulation_converges_to_bdd(seed in 0u64..200, gates in 4usize..12) {
        let circuit = small_circuit(seed, 5, gates);
        let spec = InputSpec::uniform(5);
        let exact = BddExact::default().estimate(&circuit, &spec).expect("fits");
        let model = swact_sim::StreamModel::uniform(5);
        let measured = swact_sim::measure_activity(&circuit, &model, 1 << 17, seed ^ 0x51e3);
        for line in circuit.line_ids() {
            prop_assert!(
                (measured.switching[line.index()] - exact[line.index()]).abs() < 0.02,
                "line {}: sim {} vs exact {}",
                circuit.line_name(line),
                measured.switching[line.index()],
                exact[line.index()]
            );
        }
    }
}
