//! Circuit-level kernel equivalence: on real benchmark circuits, the
//! blocked scalar kernels must calibrate the estimator's own junction
//! trees bit-identically to the per-entry two-pass reference, and the
//! opt-in simd kernels must agree to 1e-12 — with the simd estimate
//! fingerprint pinned so any accidental change to its reassociation order
//! (which would invalidate simd-keyed caches and artifacts) is caught.

use swact::pipeline::{PlannedCircuit, SegmentModel};
use swact::{CompiledEstimator, InputSpec, KernelMode, Options};
use swact_bayesnet::{initial_potentials, CompiledTree, JunctionTree, SparseMode};
use swact_circuit::catalog;

fn fnv1a(bytes: impl Iterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Rebuilds each segment's junction tree exactly as the jtree backend
/// does and checks blocked-scalar calibration against the two-pass
/// reference, clique by clique, bit by bit; simd to 1e-12.
fn assert_kernels_equivalent(name: &str) {
    let circuit = catalog::benchmark(name).unwrap();
    let options = Options::default();
    let planned = PlannedCircuit::new(&circuit, &options).unwrap();
    for i in 0..planned.num_segments() {
        let model = SegmentModel::build(&planned, i, 0).unwrap();
        let tree = JunctionTree::compile_with(model.net(), options.heuristic).unwrap();
        let pots = initial_potentials(&tree, model.net());
        for sparse in [SparseMode::Off, SparseMode::Auto] {
            let scalar = CompiledTree::from_parts_with_kernel(
                tree.clone(),
                pots.clone(),
                sparse,
                KernelMode::Scalar,
            );
            let simd = CompiledTree::from_parts_with_kernel(
                tree.clone(),
                pots.clone(),
                sparse,
                KernelMode::Simd,
            );
            let mut blocked = scalar.new_state();
            let mut reference = scalar.new_state();
            let mut vectored = simd.new_state();
            scalar.calibrate(&mut blocked);
            scalar.calibrate_two_pass(&mut reference);
            simd.calibrate(&mut vectored);
            for clique in 0..tree.num_cliques() {
                let expect = reference.clique_potential(clique).values();
                let got = blocked.clique_potential(clique).values();
                assert_eq!(expect.len(), got.len());
                for (e, g) in expect.iter().zip(got) {
                    assert_eq!(
                        e.to_bits(),
                        g.to_bits(),
                        "{name} segment {i} clique {clique}: blocked scalar \
                         must be bit-identical to two-pass"
                    );
                }
                for (e, g) in expect
                    .iter()
                    .zip(vectored.clique_potential(clique).values())
                {
                    assert!(
                        (e - g).abs() <= 1e-12,
                        "{name} segment {i} clique {clique}: simd drifted ({e} vs {g})"
                    );
                }
            }
        }
    }
}

#[test]
fn scalar_kernels_are_bit_identical_to_two_pass_on_c17() {
    assert_kernels_equivalent("c17");
}

#[test]
fn scalar_kernels_are_bit_identical_to_two_pass_on_c432() {
    assert_kernels_equivalent("c432");
}

/// The simd estimate on c17, fingerprinted the same way as the scalar
/// golden hashes in `backend_regression.rs`. Scalar stays pinned there;
/// this pin freezes the simd reassociation order — a change to lane
/// count or combine order shows up here before it silently invalidates
/// every simd-keyed cache entry and artifact.
#[test]
fn simd_estimate_fingerprint_is_pinned_on_c17() {
    let circuit = catalog::benchmark("c17").unwrap();
    let spec = InputSpec::uniform(circuit.num_inputs());
    let options = Options {
        kernel: KernelMode::Simd,
        ..Options::default()
    };
    let compiled = CompiledEstimator::compile(&circuit, &options).unwrap();
    let est = compiled.estimate(&spec).unwrap();
    let mut bytes = Vec::new();
    for line in circuit.line_ids() {
        for p in est.distribution(line).as_array() {
            bytes.extend_from_slice(&p.to_bits().to_le_bytes());
        }
    }
    let hash = fnv1a(bytes.into_iter());
    // On c17 every projection keeps a contiguous suffix run (`copy_len` >
    // 1), so the simd sum-reduction shape (`copy_len == 1`, ≥ 8 reps)
    // never triggers and simd is bit-identical to the scalar golden hash
    // of `backend_regression.rs`. The pin still holds simd to those bits.
    assert_eq!(
        (hash, est.mean_switching().to_bits()),
        (0x0820f9a42e22330d, 0x3fde1745d1745d17),
        "simd fingerprint moved — the reassociation order changed"
    );

    // And the simd answer still agrees with the default scalar one.
    let scalar = CompiledEstimator::compile(&circuit, &Options::default()).unwrap();
    let scalar_est = scalar.estimate(&spec).unwrap();
    for line in circuit.line_ids() {
        assert!(
            (est.switching(line) - scalar_est.switching(line)).abs() <= 1e-12,
            "simd switching drifted on {}",
            circuit.line_name(line)
        );
    }
}

/// On c432 under a skewed (non-dyadic) input spec the simd reduction
/// shape (`copy_len == 1`, ≥ 8 reps) is both reached and numerically
/// consequential, so the simd fingerprint genuinely diverges from
/// scalar's — this pin freezes the 4-lane reassociation order itself.
/// (Under the uniform spec the reassociated sums happen to be bit-exact,
/// which is why the c17 pin above coincides with the scalar hash.)
#[test]
fn simd_estimate_fingerprint_is_pinned_on_c432() {
    let circuit = catalog::benchmark("c432").unwrap();
    let p1s: Vec<f64> = (0..circuit.num_inputs())
        .map(|i| 0.05 + 0.9 * (i as f64 % 7.0) / 7.0)
        .collect();
    let spec = InputSpec::independent(p1s);
    let fingerprint = |kernel: KernelMode| {
        let options = Options {
            kernel,
            ..Options::default()
        };
        let compiled = CompiledEstimator::compile(&circuit, &options).unwrap();
        let est = compiled.estimate(&spec).unwrap();
        let mut bytes = Vec::new();
        for line in circuit.line_ids() {
            for p in est.distribution(line).as_array() {
                bytes.extend_from_slice(&p.to_bits().to_le_bytes());
            }
        }
        (fnv1a(bytes.into_iter()), est.mean_switching().to_bits())
    };
    let simd = fingerprint(KernelMode::Simd);
    assert_eq!(
        simd,
        (0x3459f7c8d136c263, 0x3fd1a596107d0939),
        "simd fingerprint moved — the reassociation order changed"
    );
    // The divergence from scalar is real: this is why the two kernel
    // modes must never share a model key, cache entry, or artifact.
    assert_ne!(simd, fingerprint(KernelMode::Scalar));
}
