//! Resource-governance integration tests: real (non-injected) budgets
//! driving the degradation ladder end to end.
//!
//! The contract under test: any parser-accepted netlist estimated under a
//! state budget either produces an estimate (possibly degraded, with the
//! degradations reported) or a typed error — never a panic or abort.

use proptest::prelude::*;
use swact::{estimate, Budget, CompiledEstimator, EstimateError, Fallback, InputSpec, Options};
use swact_circuit::benchgen::{generate, GeneratorConfig};
use swact_circuit::catalog;

#[test]
fn c432_under_tiny_budget_completes_with_recorded_fallbacks() {
    let circuit = catalog::benchmark("c432").expect("known benchmark");
    let spec = InputSpec::uniform(circuit.num_inputs());
    let options = Options::with_resource_budget(Budget::states(256.0));

    let compiled = CompiledEstimator::compile_for(&circuit, &spec, &options)
        .expect("tiny budget must degrade, not fail");
    assert!(
        !compiled.degradations().is_empty(),
        "a 256-state budget on c432 must trip the ladder"
    );
    // Every report names a real segment and a concrete fallback.
    let num_segments = compiled.num_segments();
    for report in compiled.degradations() {
        assert!(report.segment < num_segments, "segment index out of range");
        match report.fallback {
            Fallback::Replanned { subsegments } => assert!(subsegments >= 1),
            Fallback::TwoState => {}
            _ => {}
        }
    }

    let est = compiled.estimate(&spec).expect("degraded model still runs");
    assert!(est.is_degraded());
    assert_eq!(est.degradations(), compiled.degradations());
    for line in circuit.line_ids() {
        let sw = est.switching(line);
        assert!(
            (0.0..=1.0).contains(&sw),
            "switching out of range on {:?}: {sw}",
            circuit.line_name(line)
        );
    }

    // Degradation is deterministic: same budget, same ladder, same numbers.
    let again = estimate(&circuit, &spec, &options).expect("rerun");
    assert_eq!(est.switching_all(), again.switching_all());
}

#[test]
fn no_fallback_turns_budget_exhaustion_into_a_typed_error() {
    let circuit = catalog::benchmark("c432").expect("known benchmark");
    let spec = InputSpec::uniform(circuit.num_inputs());
    let options = Options {
        no_fallback: true,
        ..Options::with_resource_budget(Budget::states(256.0))
    };
    let err = CompiledEstimator::compile_for(&circuit, &spec, &options)
        .expect_err("no-fallback compile must abort");
    match err {
        EstimateError::BudgetExceeded { states, budget, .. } => {
            assert!(states > budget);
            assert_eq!(budget, 256.0);
        }
        other => panic!("expected BudgetExceeded, got {other}"),
    }
}

#[test]
fn unlimited_budget_changes_nothing() {
    // A present-but-unlimited budget must be bit-identical to no budget at
    // all: admission checks may run, but the plan must not change.
    let circuit = catalog::c17();
    let spec = InputSpec::uniform(circuit.num_inputs());
    let plain = estimate(&circuit, &spec, &Options::default()).expect("plain");
    let governed = estimate(
        &circuit,
        &spec,
        &Options::with_resource_budget(Budget::UNLIMITED),
    )
    .expect("governed");
    assert!(!governed.is_degraded());
    assert_eq!(plain.switching_all(), governed.switching_all());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The ladder's completion guarantee: generated netlists under an
    /// arbitrary (often absurdly small) state budget always estimate —
    /// degraded if need be, panicking never.
    #[test]
    fn budgeted_estimation_never_aborts(
        inputs in 3usize..8,
        gates in 8usize..48,
        seed in 0u64..1u64 << 32,
        budget in 32f64..4096.0,
    ) {
        let circuit = generate(&GeneratorConfig {
            inputs,
            outputs: 1 + gates / 8,
            gates,
            seed,
            ..GeneratorConfig::default_for("budget-prop")
        });
        let spec = InputSpec::uniform(circuit.num_inputs());
        let options = Options::with_resource_budget(Budget::states(budget));
        let est = estimate(&circuit, &spec, &options)
            .expect("budgeted estimation must complete");
        for line in circuit.line_ids() {
            let sw = est.switching(line);
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&sw), "switching {sw}");
        }
        // Reports, when present, must name real segments.
        for report in est.degradations() {
            prop_assert!(report.segment < est.num_segments());
        }
    }
}
