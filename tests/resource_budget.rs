//! Resource-governance integration tests: real (non-injected) budgets
//! driving the degradation ladder end to end.
//!
//! The contract under test: any parser-accepted netlist estimated under a
//! state budget either produces an estimate (possibly degraded, with the
//! degradations reported) or a typed error — never a panic or abort.

use proptest::prelude::*;
use swact::{estimate, Budget, CompiledEstimator, EstimateError, Fallback, InputSpec, Options};
use swact_circuit::benchgen::{generate, GeneratorConfig};
use swact_circuit::catalog;

#[test]
fn c432_under_tiny_budget_completes_with_recorded_fallbacks() {
    let circuit = catalog::benchmark("c432").expect("known benchmark");
    let spec = InputSpec::uniform(circuit.num_inputs());
    let options = Options::with_resource_budget(Budget::states(256.0));

    let compiled = CompiledEstimator::compile_for(&circuit, &spec, &options)
        .expect("tiny budget must degrade, not fail");
    assert!(
        !compiled.degradations().is_empty(),
        "a 256-state budget on c432 must trip the ladder"
    );
    // Every report names a real segment and a concrete fallback.
    let num_segments = compiled.num_segments();
    for report in compiled.degradations() {
        assert!(report.segment < num_segments, "segment index out of range");
        match report.fallback {
            Fallback::Replanned { subsegments } => assert!(subsegments >= 1),
            Fallback::TwoState => {}
            _ => {}
        }
    }

    let est = compiled.estimate(&spec).expect("degraded model still runs");
    assert!(est.is_degraded());
    assert_eq!(est.degradations(), compiled.degradations());
    for line in circuit.line_ids() {
        let sw = est.switching(line);
        assert!(
            (0.0..=1.0).contains(&sw),
            "switching out of range on {:?}: {sw}",
            circuit.line_name(line)
        );
    }

    // Degradation is deterministic: same budget, same ladder, same numbers.
    let again = estimate(&circuit, &spec, &options).expect("rerun");
    assert_eq!(est.switching_all(), again.switching_all());
}

#[test]
fn no_fallback_turns_budget_exhaustion_into_a_typed_error() {
    let circuit = catalog::benchmark("c432").expect("known benchmark");
    let spec = InputSpec::uniform(circuit.num_inputs());
    let options = Options {
        no_fallback: true,
        ..Options::with_resource_budget(Budget::states(256.0))
    };
    let err = CompiledEstimator::compile_for(&circuit, &spec, &options)
        .expect_err("no-fallback compile must abort");
    match err {
        // The sampling rung exists, but --no-fallback means *no* rung runs:
        // the error must surface immediately, attributed to the primary
        // backend — never a silent switch to sampling.
        EstimateError::BudgetExceeded {
            states,
            budget,
            rung,
            ..
        } => {
            assert!(states > budget);
            assert_eq!(budget, 256.0);
            assert_eq!(rung, "jtree", "attributed to the rung that tripped");
        }
        other => panic!("expected BudgetExceeded, got {other}"),
    }
}

/// The acceptance claim for the anytime middle rung: on c432 under
/// temporally correlated inputs and a budget small enough that replanning
/// cannot rescue the big segments, the ladder lands on the sampling rung —
/// and the sampled mean switching is strictly closer to the exact
/// junction-tree answer than the twostate proxy's, and within the
/// sampler's own reported confidence half-width.
#[test]
fn sampling_rung_beats_twostate_within_its_reported_interval() {
    use swact::{Backend, InputModel};

    let circuit = catalog::benchmark("c432").expect("known benchmark");
    // Temporal correlation: activity far below the temporally independent
    // 2·p·(1−p) = 0.5 — exactly the regime the twostate proxy mishandles.
    let model = InputModel::new(0.5, 0.1).expect("valid model");
    let spec = InputSpec::from_models(vec![model; circuit.num_inputs()]);

    let exact = estimate(&circuit, &spec, &Options::default()).expect("exact jtree");
    let twostate = estimate(&circuit, &spec, &Options::with_backend(Backend::TwoState))
        .expect("twostate proxy");

    // 48 states is below even a single two-input gate's clique (4³ = 64),
    // so replanning cannot save any segment: every gate segment must fall
    // through to the sampling rung.
    let budgeted = Options {
        ci_half_width: 0.005,
        ..Options::with_resource_budget(Budget::states(48.0))
    };
    let sampled = estimate(&circuit, &spec, &budgeted).expect("degraded estimate");
    assert!(
        sampled
            .degradations()
            .iter()
            .any(|d| d.fallback == Fallback::Sampling),
        "the ladder must record sampling fallbacks"
    );
    let accuracy = *sampled
        .accuracy()
        .expect("sampled estimates carry accuracy");
    assert!(accuracy.samples > 0);

    let exact_mean = exact.mean_switching();
    let sampled_err = (sampled.mean_switching() - exact_mean).abs();
    let twostate_err = (twostate.mean_switching() - exact_mean).abs();
    assert!(
        sampled_err < twostate_err,
        "sampling must beat the twostate proxy under temporal correlation: \
         sampled err {sampled_err:.5} vs twostate err {twostate_err:.5}"
    );
    assert!(
        sampled_err <= accuracy.half_width,
        "sampled mean must sit within its reported interval: \
         err {sampled_err:.5} > ±{:.5}",
        accuracy.half_width
    );
}

/// An already-expired deadline is the worst case for the anytime stopping
/// rule — and even then every sampled segment draws exactly one batch
/// (512 samples): the sampler always produces an estimate and never
/// overshoots the deadline by more than that single batch.
#[test]
fn expired_deadline_still_draws_exactly_one_batch_per_segment() {
    use std::time::Duration;
    use swact::Backend;

    let circuit = catalog::benchmark("c432").expect("known benchmark");
    let spec = InputSpec::uniform(circuit.num_inputs());
    let options = Options {
        backend: Backend::Sampling,
        budget: Budget {
            deadline: Some(Duration::ZERO),
            ..Budget::UNLIMITED
        },
        ..Options::default()
    };
    let compiled =
        CompiledEstimator::compile_for(&circuit, &spec, &options).expect("sampling compile");
    let sampled_segments = compiled.sampled_segments();
    assert!(sampled_segments > 0);
    let est = compiled.estimate(&spec).expect("anytime estimate");
    let accuracy = *est.accuracy().expect("accuracy report present");
    assert_eq!(
        accuracy.samples,
        512 * sampled_segments as u64,
        "one batch per segment, no more, no less"
    );
    for line in circuit.line_ids() {
        let sw = est.switching(line);
        assert!((0.0..=1.0).contains(&sw), "switching {sw}");
    }
}

#[test]
fn unlimited_budget_changes_nothing() {
    // A present-but-unlimited budget must be bit-identical to no budget at
    // all: admission checks may run, but the plan must not change.
    let circuit = catalog::c17();
    let spec = InputSpec::uniform(circuit.num_inputs());
    let plain = estimate(&circuit, &spec, &Options::default()).expect("plain");
    let governed = estimate(
        &circuit,
        &spec,
        &Options::with_resource_budget(Budget::UNLIMITED),
    )
    .expect("governed");
    assert!(!governed.is_degraded());
    assert_eq!(plain.switching_all(), governed.switching_all());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The ladder's completion guarantee: generated netlists under an
    /// arbitrary (often absurdly small) state budget always estimate —
    /// degraded if need be, panicking never.
    #[test]
    fn budgeted_estimation_never_aborts(
        inputs in 3usize..8,
        gates in 8usize..48,
        seed in 0u64..1u64 << 32,
        budget in 32f64..4096.0,
    ) {
        let circuit = generate(&GeneratorConfig {
            inputs,
            outputs: 1 + gates / 8,
            gates,
            seed,
            ..GeneratorConfig::default_for("budget-prop")
        });
        let spec = InputSpec::uniform(circuit.num_inputs());
        let options = Options::with_resource_budget(Budget::states(budget));
        let est = estimate(&circuit, &spec, &options)
            .expect("budgeted estimation must complete");
        for line in circuit.line_ids() {
            let sw = est.switching(line);
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&sw), "switching {sw}");
        }
        // Reports, when present, must name real segments.
        for report in est.degradations() {
            prop_assert!(report.segment < est.num_segments());
        }
    }

    /// The anytime overshoot bound: with an already-expired deadline the
    /// sampler still answers, drawing exactly one 512-sample batch per
    /// sampled segment — never less (an estimate always exists) and never
    /// more (the deadline is re-checked before every later batch).
    #[test]
    fn sampler_overshoots_an_expired_deadline_by_at_most_one_batch(
        inputs in 3usize..8,
        gates in 8usize..32,
        seed in 0u64..1u64 << 32,
    ) {
        use std::time::Duration;
        use swact::Backend;

        let circuit = generate(&GeneratorConfig {
            inputs,
            outputs: 1 + gates / 8,
            gates,
            seed,
            ..GeneratorConfig::default_for("anytime-prop")
        });
        let spec = InputSpec::uniform(circuit.num_inputs());
        let options = Options {
            backend: Backend::Sampling,
            seed,
            budget: Budget {
                deadline: Some(Duration::ZERO),
                ..Budget::UNLIMITED
            },
            ..Options::default()
        };
        let compiled = CompiledEstimator::compile_for(&circuit, &spec, &options)
            .expect("sampling compile ignores the compile-stage deadline");
        let est = compiled.estimate(&spec).expect("anytime estimate");
        let accuracy = est.accuracy().expect("accuracy report present");
        prop_assert_eq!(
            accuracy.samples,
            512 * compiled.sampled_segments() as u64,
            "exactly one batch per sampled segment"
        );
        for line in circuit.line_ids() {
            let sw = est.switching(line);
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&sw), "switching {}", sw);
        }
    }
}
