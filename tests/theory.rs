//! The paper's Section 3 theory as executable checks: LIDAGs are I-maps,
//! junction-tree inference agrees with independent exact engines, and the
//! semi-graphoid axioms hold for d-separation on circuit-induced DAGs.

use swact::{InputSpec, Lidag};
use swact_bayesnet::dsep::{d_separated, independent_in_joint, markov_blanket};
use swact_bayesnet::elim::eliminate;
use swact_bayesnet::{Heuristic, JunctionTree, Propagator, VarId};
use swact_circuit::benchgen::{generate, GeneratorConfig};
use swact_circuit::catalog;

fn small_random_lidag(seed: u64) -> (swact_circuit::Circuit, Lidag) {
    let circuit = generate(&GeneratorConfig {
        inputs: 4,
        outputs: 2,
        gates: 6,
        seed,
        ..GeneratorConfig::default_for("theory")
    });
    let spec = InputSpec::independent((0..4).map(|i| 0.25 + 0.15 * i as f64));
    let lidag = Lidag::build(&circuit, &spec, 4).expect("builds");
    (circuit, lidag)
}

#[test]
fn lidag_is_an_i_map_on_random_circuits() {
    // Theorem 3: every d-separation displayed by the LIDAG corresponds to
    // a true conditional independence of the switching distribution.
    for seed in 0..4u64 {
        let (_, lidag) = small_random_lidag(seed);
        let net = lidag.net();
        let n = net.num_vars();
        let vars: Vec<VarId> = net.var_ids().collect();
        // Enumerate a systematic family of triples (x, y, {z}).
        let mut checked = 0;
        for &x in &vars {
            for &y in &vars {
                if x >= y {
                    continue;
                }
                for z_mask in 0..n.min(6) {
                    let z: Vec<VarId> = vars
                        .iter()
                        .copied()
                        .filter(|v| *v != x && *v != y && v.index() % n.min(6) == z_mask)
                        .take(2)
                        .collect();
                    if d_separated(net, &[x], &[y], &z) {
                        checked += 1;
                        assert!(
                            independent_in_joint(net, &[x], &[y], &z, 1e-9),
                            "seed {seed}: {x} ⟂̸ {y} | {z:?} despite d-separation"
                        );
                    }
                }
            }
        }
        // The family must actually exercise some separations.
        assert!(checked > 0, "seed {seed}: no d-separations sampled");
    }
}

#[test]
fn dsep_symmetry_and_decomposition_axioms() {
    // Theorem 1's symmetry and decomposition axioms, spot-checked
    // graphically on the paper's example.
    let circuit = catalog::paper_example();
    let lidag = Lidag::build(&circuit, &InputSpec::uniform(4), 4).unwrap();
    let net = lidag.net();
    let v = |name: &str| lidag.var_by_name(name).unwrap();
    let (x, z) = (vec![v("1")], vec![v("5")]);
    let yw = vec![v("2"), v("3")];
    // Symmetry.
    assert_eq!(d_separated(net, &x, &yw, &z), d_separated(net, &yw, &x, &z));
    // Decomposition: I(X, Z, Y ∪ W) ⇒ I(X, Z, Y) and I(X, Z, W).
    if d_separated(net, &x, &yw, &z) {
        assert!(d_separated(net, &x, &[yw[0]], &z));
        assert!(d_separated(net, &x, &[yw[1]], &z));
    }
}

#[test]
fn markov_boundary_matches_gate_families() {
    // Theorem 3's proof hinges on each output variable's Markov boundary
    // being its gate family; verify blanket ⊇ parents and numeric
    // shielding on random circuits.
    for seed in 0..4u64 {
        let (circuit, lidag) = small_random_lidag(100 + seed);
        let net = lidag.net();
        for line in circuit.gate_lines() {
            let var = lidag.var_by_name(circuit.line_name(line)).unwrap();
            let blanket = markov_blanket(net, var);
            for &p in net.parents(var) {
                assert!(blanket.contains(&p));
            }
            // Conditioned on the blanket, the variable is d-separated from
            // everything else.
            let rest: Vec<VarId> = net
                .var_ids()
                .filter(|v| *v != var && !blanket.contains(v))
                .collect();
            if !rest.is_empty() {
                assert!(d_separated(net, &[var], &rest, &blanket));
            }
        }
    }
}

#[test]
fn junction_tree_agrees_with_variable_elimination_on_lidags() {
    for seed in [5u64, 17, 23] {
        let (_, lidag) = small_random_lidag(seed);
        let net = lidag.net();
        let tree = JunctionTree::compile(net).unwrap();
        assert!(tree.satisfies_running_intersection());
        let mut prop = Propagator::new(&tree, net).unwrap();
        prop.calibrate();
        for var in net.var_ids() {
            let jt = prop.marginal(var);
            let ve = eliminate(net, var, &[], Heuristic::MinDegree).unwrap();
            for (a, b) in jt.iter().zip(&ve) {
                assert!((a - b).abs() < 1e-10, "seed {seed} var {var}");
            }
        }
    }
}

#[test]
fn posterior_queries_with_evidence_agree_across_engines() {
    let (_, lidag) = small_random_lidag(42);
    let net = lidag.net();
    let tree = JunctionTree::compile(net).unwrap();
    let last = VarId::from_index(net.num_vars() - 1);
    let mut prop = Propagator::new(&tree, net).unwrap();
    // Observe the last variable rising.
    prop.set_evidence(last, 1).unwrap();
    prop.calibrate();
    for var in net.var_ids() {
        if var == last {
            continue;
        }
        let jt = prop.marginal(var);
        let ve = eliminate(net, var, &[(last, 1)], Heuristic::MinFill).unwrap();
        let bf = net.brute_force_marginal(var, &[(last, 1)]);
        for ((a, b), c) in jt.iter().zip(&ve).zip(&bf) {
            assert!((a - b).abs() < 1e-10);
            assert!((a - c).abs() < 1e-10);
        }
    }
}
