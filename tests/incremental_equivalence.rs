//! Incremental re-propagation must be invisible: an estimator that reuses
//! collect messages and memoized segment posteriors across an
//! input-statistic sweep must produce results *bit-identical*
//! (`f64::to_bits`) to a cold estimator that recomputes everything, for
//! every scenario in the sweep — including under zero-compressed (sparse)
//! kernels and on budget-degraded segments, where memoization is gated
//! off entirely.
//!
//! The warm estimators here are process-global (`OnceLock`), so cache
//! state accumulates across proptest cases — equivalence must hold no
//! matter what sequence of perturbations preceded the current one.

use std::sync::OnceLock;

use proptest::prelude::*;
use swact::{Budget, CompiledEstimator, InputSpec, Options, SparseMode};
use swact_circuit::{catalog, Circuit};

/// One circuit compiled twice: `cold` with `incremental: false` (the
/// reference), `warm` with reuse on. The warm side keeps its message
/// caches and memos alive across every scenario the tests feed it.
struct Harness {
    circuit: Circuit,
    cold: CompiledEstimator,
    warm: CompiledEstimator,
}

impl Harness {
    fn build(name: &str, options: Options) -> Harness {
        let circuit = catalog::benchmark(name).expect("known benchmark");
        let cold = CompiledEstimator::compile(
            &circuit,
            &Options {
                incremental: false,
                ..options
            },
        )
        .expect("cold compile");
        let warm = CompiledEstimator::compile(
            &circuit,
            &Options {
                incremental: true,
                ..options
            },
        )
        .expect("warm compile");
        Harness {
            circuit,
            cold,
            warm,
        }
    }

    /// Estimates `spec` in both modes and asserts every per-line posterior
    /// and the summary statistics bit-identical.
    fn assert_bit_identical(&self, spec: &InputSpec) {
        let cold = self.cold.estimate(spec).expect("cold estimate");
        let warm = self.warm.estimate(spec).expect("warm estimate");
        let cold_reuse = cold.reuse_stats();
        assert_eq!(
            (cold_reuse.messages_reused, cold_reuse.segments_skipped),
            (0, 0),
            "a cold estimator must never reuse work"
        );
        for line in self.circuit.line_ids() {
            assert_eq!(
                cold.switching(line).to_bits(),
                warm.switching(line).to_bits(),
                "switching differs on {}",
                self.circuit.line_name(line)
            );
            assert_eq!(
                cold.signal_probability(line).to_bits(),
                warm.signal_probability(line).to_bits(),
                "P(1) differs on {}",
                self.circuit.line_name(line)
            );
        }
        assert_eq!(
            cold.mean_switching().to_bits(),
            warm.mean_switching().to_bits()
        );
    }
}

fn c17() -> &'static Harness {
    static H: OnceLock<Harness> = OnceLock::new();
    H.get_or_init(|| Harness::build("c17", Options::default()))
}

fn c432() -> &'static Harness {
    static H: OnceLock<Harness> = OnceLock::new();
    H.get_or_init(|| Harness::build("c432", Options::default()))
}

fn c17_sparse() -> &'static Harness {
    static H: OnceLock<Harness> = OnceLock::new();
    H.get_or_init(|| {
        Harness::build(
            "c17",
            Options {
                sparse: SparseMode::On,
                ..Options::default()
            },
        )
    })
}

fn c432_sparse() -> &'static Harness {
    static H: OnceLock<Harness> = OnceLock::new();
    H.get_or_init(|| {
        Harness::build(
            "c432",
            Options {
                sparse: SparseMode::On,
                ..Options::default()
            },
        )
    })
}

/// c432 under a 256-state budget: the degradation ladder replaces jtree
/// segments with the two-state fallback, which must never memoize — and
/// the results must still match the equally degraded cold estimator bit
/// for bit.
fn c432_degraded() -> &'static Harness {
    static H: OnceLock<Harness> = OnceLock::new();
    H.get_or_init(|| {
        let h = Harness::build("c432", Options::with_resource_budget(Budget::states(256.0)));
        assert!(
            !h.warm.degradations().is_empty(),
            "a 256-state budget on c432 must trip the ladder"
        );
        h
    })
}

/// A sweep: each step rewrites 1–3 input probabilities, accumulating on
/// the all-0.5 base. Single-input steps exercise the dirty-cone fast
/// path; multi-input steps exercise cross-segment invalidation.
fn sweep_strategy(
    num_inputs: usize,
    steps: std::ops::Range<usize>,
) -> impl Strategy<Value = Vec<Vec<(usize, f64)>>> {
    proptest::collection::vec(
        proptest::collection::vec((0..num_inputs, 0.05f64..0.95), 1..=3),
        steps,
    )
}

fn run_sweep(harness: &Harness, sweep: &[Vec<(usize, f64)>]) {
    let mut p1s = vec![0.5; harness.circuit.num_inputs()];
    for step in sweep {
        for &(input, p1) in step {
            p1s[input] = p1;
        }
        harness.assert_bit_identical(&InputSpec::independent(p1s.clone()));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn c17_incremental_sweep_is_bit_identical(
        sweep in sweep_strategy(5, 2..5),
    ) {
        run_sweep(c17(), &sweep);
    }

    #[test]
    fn c17_sparse_incremental_sweep_is_bit_identical(
        sweep in sweep_strategy(5, 2..5),
    ) {
        run_sweep(c17_sparse(), &sweep);
    }

    #[test]
    fn c432_degraded_incremental_sweep_is_bit_identical(
        sweep in sweep_strategy(36, 2..4),
    ) {
        run_sweep(c432_degraded(), &sweep);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn c432_incremental_sweep_is_bit_identical(
        sweep in sweep_strategy(36, 2..4),
    ) {
        run_sweep(c432(), &sweep);
    }

    #[test]
    fn c432_sparse_incremental_sweep_is_bit_identical(
        sweep in sweep_strategy(36, 2..4),
    ) {
        run_sweep(c432_sparse(), &sweep);
    }
}

/// Deterministic repetition: re-estimating the identical spec must skip
/// every segment via the posterior memo, and the served posteriors must
/// still match cold bit for bit.
#[test]
fn repeated_identical_scenario_skips_all_segments() {
    let harness = c432();
    let spec = InputSpec::independent(vec![0.25; 36]);
    harness.assert_bit_identical(&spec);
    let again = harness.warm.estimate(&spec).expect("warm estimate");
    assert!(
        again.reuse_stats().segments_skipped > 0,
        "an unchanged scenario must be served from the posterior memo"
    );
    let cold = harness.cold.estimate(&spec).expect("cold estimate");
    for line in harness.circuit.line_ids() {
        assert_eq!(
            cold.switching(line).to_bits(),
            again.switching(line).to_bits()
        );
    }
}
