//! Fault injection through the *server* path (the `fault-inject`
//! feature): an engine-level panic surfaces to the HTTP client as a
//! structured `500` JSON body, and the server keeps serving afterwards.
#![cfg(feature = "fault-inject")]

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use swact::faults::{arm, FaultAction, FaultPlan};
use swact_serve::{admission::ClientTable, Server, ServerConfig};

fn exchange(addr: std::net::SocketAddr, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let request = format!(
        "POST /v1/estimate HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn injected_job_panic_becomes_a_structured_500_and_the_server_survives() {
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        jobs: 1,
        handlers: 2,
        clients: ClientTable::default(),
        drain: Duration::from_secs(5),
        cache_dir: None,
    })
    .expect("bind");
    let addr = server.local_addr();
    let body = r#"{"circuit":"c17","p1":[0.5,0.5,0.5,0.5,0.5]}"#;

    // Three one-shot panics at the job point defeat the engine's two
    // retries, so the scenario fails for good.
    let _guard = arm(FaultPlan::new()
        .fault_at("engine:job", 0, FaultAction::Panic)
        .fault_at("engine:job", 0, FaultAction::Panic)
        .fault_at("engine:job", 0, FaultAction::Panic));

    let (status, response) = exchange(addr, body);
    assert_eq!(status, 500, "body: {response}");
    assert!(response.contains("\"error\":{\"code\":\"panicked\""));
    assert!(response.contains("injected fault"));

    // The panic was contained at the job boundary: the very next request
    // on the same server succeeds (the fault plan is spent).
    let (status, response) = exchange(addr, body);
    assert_eq!(status, 200, "body: {response}");
    assert!(response.starts_with("{\"circuit\":\"c17\""));

    // And the panic is visible on the metrics endpoint.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n")
        .expect("send");
    let mut metrics = String::new();
    stream.read_to_string(&mut metrics).expect("read");
    assert!(metrics.contains("swact_engine_jobs_panicked 3\n"));
    assert!(metrics.contains("swact_engine_retries 2\n"));
    assert!(
        metrics.contains("swact_server_responses_total{endpoint=\"estimate\",class=\"5xx\"} 1\n")
    );
    assert!(
        metrics.contains("swact_server_responses_total{endpoint=\"estimate\",class=\"2xx\"} 1\n")
    );

    server.handle().shutdown();
    server.wait();
}
