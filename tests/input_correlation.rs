//! Validation of correlated primary-input modeling — the paper's future
//! work (§7) realized: the estimator's [`InputGroup`]s share a generative
//! model with `swact-sim`'s `SpatialGroup`s, so estimates must track
//! simulation under spatially correlated streams.

use swact::{estimate, CompiledEstimator, InputGroup, InputModel, InputSpec, Options};
use swact_circuit::catalog;
use swact_sim::{measure_activity, SignalModel, SpatialGroup, StreamModel};

fn correlated_pair_setup(
    circuit: &swact_circuit::Circuit,
    copy_prob: f64,
) -> (InputSpec, StreamModel) {
    let n = circuit.num_inputs();
    let latent = InputModel::independent(0.5);
    let spec = InputSpec::uniform(n).with_groups(vec![InputGroup {
        members: vec![0, 1],
        latent,
        copy_prob,
    }]);
    let model = StreamModel {
        signals: vec![SignalModel::independent(0.5); n],
        groups: vec![SpatialGroup {
            members: vec![0, 1],
            latent: SignalModel::independent(0.5),
            copy_prob,
        }],
    };
    (spec, model)
}

#[test]
fn fully_copied_inputs_match_simulation() {
    // With copy_prob 1 both members equal the latent stream exactly —
    // maximal spatial correlation.
    let circuit = catalog::c17();
    let (spec, model) = correlated_pair_setup(&circuit, 1.0);
    let est = estimate(&circuit, &spec, &Options::default()).unwrap();
    let truth = measure_activity(&circuit, &model, 1 << 19, 9).switching;
    for line in circuit.line_ids() {
        assert!(
            (est.switching(line) - truth[line.index()]).abs() < 0.01,
            "line {}: est {} vs sim {}",
            circuit.line_name(line),
            est.switching(line),
            truth[line.index()]
        );
    }
}

#[test]
fn partially_correlated_inputs_match_simulation() {
    let circuit = catalog::c17();
    for copy_prob in [0.0, 0.4, 0.8] {
        let (spec, model) = correlated_pair_setup(&circuit, copy_prob);
        let est = estimate(&circuit, &spec, &Options::default()).unwrap();
        let truth = measure_activity(&circuit, &model, 1 << 19, 11).switching;
        let stats = est.compare(&truth);
        assert!(
            stats.mean_abs_error < 0.01,
            "copy_prob {copy_prob}: µErr {}",
            stats.mean_abs_error
        );
    }
}

#[test]
fn ignoring_correlation_is_visibly_worse() {
    // The same circuit/streams estimated WITHOUT groups must show a larger
    // error than the group-aware estimate — otherwise the feature is
    // doing nothing.
    let circuit = catalog::c17();
    let (spec, model) = correlated_pair_setup(&circuit, 1.0);
    let truth = measure_activity(&circuit, &model, 1 << 19, 13).switching;
    let with_groups = estimate(&circuit, &spec, &Options::default()).unwrap();
    let without_groups = estimate(
        &circuit,
        &InputSpec::uniform(circuit.num_inputs()),
        &Options::default(),
    )
    .unwrap();
    let err_with = with_groups.compare(&truth).mean_abs_error;
    let err_without = without_groups.compare(&truth).mean_abs_error;
    assert!(
        err_with * 2.0 < err_without,
        "group-aware {err_with} vs group-blind {err_without}"
    );
}

#[test]
fn group_structure_is_part_of_the_compiled_network() {
    let circuit = catalog::c17();
    let (spec, _) = correlated_pair_setup(&circuit, 0.7);
    let compiled = CompiledEstimator::compile_for(&circuit, &spec, &Options::default()).unwrap();
    // Same structure, different probabilities: fine.
    let (spec2, _) = correlated_pair_setup(&circuit, 0.2);
    assert!(compiled.estimate(&spec2).is_ok());
    // Different membership: rejected.
    let other = InputSpec::uniform(circuit.num_inputs()).with_groups(vec![InputGroup {
        members: vec![2, 3],
        latent: InputModel::independent(0.5),
        copy_prob: 0.5,
    }]);
    assert!(matches!(
        compiled.estimate(&other),
        Err(swact::EstimateError::GroupStructureMismatch)
    ));
    // No groups at all: also a different structure.
    assert!(compiled
        .estimate(&InputSpec::uniform(circuit.num_inputs()))
        .is_err());
}

#[test]
fn explicit_pairwise_joints_match_exhaustive_enumeration() {
    use swact::{PairwiseJoint, Transition};
    // c17 with inputs 0 and 1 carrying an explicit joint (input 1 tends to
    // mirror input 0's transition). Reference: enumerate all weighted
    // (prev, next) vector pairs under the chain P(x0)·P(x1|x0)·ΠP(xi).
    let circuit = catalog::c17();
    let mut joint = [[0.0f64; 4]; 4];
    for (a, row) in joint.iter_mut().enumerate() {
        for (b, slot) in row.iter_mut().enumerate() {
            // Diagonal-heavy joint: x1 repeats x0's transition 70% of the
            // time, otherwise uniform.
            *slot = 0.25 * if a == b { 0.7 + 0.3 * 0.25 } else { 0.3 * 0.25 };
        }
    }
    let spec =
        InputSpec::uniform(5).with_pairwise_joints(vec![PairwiseJoint { a: 0, b: 1, joint }]);
    let est = estimate(&circuit, &spec, &Options::single_bn()).unwrap();

    // Exhaustive reference.
    let order = circuit.topo_order();
    let eval = |assignment: usize| -> Vec<bool> {
        let mut values = vec![false; circuit.num_lines()];
        for (i, &pi) in circuit.inputs().iter().enumerate() {
            values[pi.index()] = assignment >> i & 1 == 1;
        }
        for &line in &order {
            if let Some(g) = circuit.gate(line) {
                values[line.index()] = g.kind.eval(g.inputs.iter().map(|&l| values[l.index()]));
            }
        }
        values
    };
    let mut switching = vec![0.0f64; circuit.num_lines()];
    for prev in 0..32usize {
        let prev_vals = eval(prev);
        for next in 0..32usize {
            let t = |i: usize| Transition::from_values(prev >> i & 1 == 1, next >> i & 1 == 1);
            let mut weight = joint[t(0).index()][t(1).index()];
            for _ in 2..5 {
                weight *= 0.25;
            }
            if weight == 0.0 {
                continue;
            }
            let next_vals = eval(next);
            for line in circuit.line_ids() {
                if prev_vals[line.index()] != next_vals[line.index()] {
                    switching[line.index()] += weight;
                }
            }
        }
    }
    for line in circuit.line_ids() {
        assert!(
            (est.switching(line) - switching[line.index()]).abs() < 1e-9,
            "line {}: est {} vs exact {}",
            circuit.line_name(line),
            est.switching(line),
            switching[line.index()]
        );
    }
}

#[test]
fn pairwise_joint_structure_is_compiled() {
    use swact::PairwiseJoint;
    let circuit = catalog::c17();
    let identity = {
        let mut j = [[0.0f64; 4]; 4];
        for (a, row) in j.iter_mut().enumerate() {
            row[a] = 0.25;
        }
        j
    };
    let spec = InputSpec::uniform(5).with_pairwise_joints(vec![PairwiseJoint {
        a: 0,
        b: 1,
        joint: identity,
    }]);
    let compiled =
        swact::CompiledEstimator::compile_for(&circuit, &spec, &Options::default()).unwrap();
    // Same pair structure with different numbers: fine.
    assert!(compiled.estimate(&spec).is_ok());
    // Dropping the pair changes the structure: rejected.
    assert!(matches!(
        compiled.estimate(&InputSpec::uniform(5)),
        Err(swact::EstimateError::GroupStructureMismatch)
    ));
}

#[test]
fn three_member_groups_stay_accurate() {
    // Chains approximate >2-member groups pairwise; accuracy should still
    // be far better than ignoring the correlation.
    let circuit = catalog::benchmark("pcler8").unwrap();
    let n = circuit.num_inputs();
    let copy_prob = 0.9;
    let spec = InputSpec::uniform(n).with_groups(vec![InputGroup {
        members: vec![0, 1, 2],
        latent: InputModel::independent(0.5),
        copy_prob,
    }]);
    let model = StreamModel {
        signals: vec![SignalModel::independent(0.5); n],
        groups: vec![SpatialGroup {
            members: vec![0, 1, 2],
            latent: SignalModel::independent(0.5),
            copy_prob,
        }],
    };
    let truth = measure_activity(&circuit, &model, 1 << 19, 21).switching;
    let est = estimate(&circuit, &spec, &Options::default()).unwrap();
    let stats = est.compare(&truth);
    assert!(
        stats.mean_abs_error < 0.02,
        "µErr {} for 3-member group",
        stats.mean_abs_error
    );
}
