//! Cross-estimator consistency and ranking — the Table 2 story as
//! executable assertions.

use swact::{estimate, InputModel, InputSpec, Options};
use swact_baselines::{
    BddExact, Independence, PairwiseCorrelation, SwitchingEstimator, TransitionDensity,
};
use swact_circuit::catalog;
use swact_sim::{measure_activity, StreamModel};

fn mean_abs_error(estimate: &[f64], truth: &[f64]) -> f64 {
    estimate
        .iter()
        .zip(truth)
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
        / truth.len() as f64
}

#[test]
fn bn_matches_bdd_exact_on_single_bn_circuits() {
    // Two completely independent exact engines (junction tree vs BDD).
    for name in ["c17", "pcler8"] {
        let circuit = catalog::benchmark(name).unwrap();
        let spec = InputSpec::from_models(
            (0..circuit.num_inputs())
                .map(|i| InputModel::new(0.3 + 0.04 * (i % 10) as f64, 0.15).unwrap())
                .collect(),
        );
        let bn = estimate(&circuit, &spec, &Options::single_bn()).unwrap();
        let bdd = BddExact::default().estimate(&circuit, &spec).unwrap();
        for line in circuit.line_ids() {
            assert!(
                (bn.switching(line) - bdd[line.index()]).abs() < 1e-9,
                "{name} line {}",
                circuit.line_name(line)
            );
        }
    }
}

#[test]
fn estimator_ranking_on_benchmarks() {
    // BN ≤ pairwise ≤ independence in mean error against simulation —
    // the Table 2 ordering (with a small tolerance for ties).
    for name in ["c499", "c880"] {
        let circuit = catalog::benchmark(name).unwrap();
        let spec = InputSpec::uniform(circuit.num_inputs());
        let truth = measure_activity(
            &circuit,
            &StreamModel::uniform(circuit.num_inputs()),
            1 << 19,
            0xbeef,
        )
        .switching;
        let bn = estimate(&circuit, &spec, &Options::default()).unwrap();
        let bn_err = mean_abs_error(&bn.switching_all(), &truth);
        let pw_err = mean_abs_error(
            &PairwiseCorrelation::default()
                .estimate(&circuit, &spec)
                .unwrap(),
            &truth,
        );
        let ind_err = mean_abs_error(&Independence.estimate(&circuit, &spec).unwrap(), &truth);
        assert!(
            bn_err <= pw_err + 1e-3,
            "{name}: BN {bn_err} vs pairwise {pw_err}"
        );
        assert!(
            pw_err <= ind_err + 1e-3,
            "{name}: pairwise {pw_err} vs indep {ind_err}"
        );
        assert!(
            ind_err < 3.0 * bn_err + 0.5,
            "sanity: independence should not be absurd"
        );
    }
}

#[test]
fn density_bounds_activity_from_above_on_average() {
    // Transition density over-counts; on realistic circuits its mean must
    // not be below the true mean activity.
    let circuit = catalog::benchmark("c432").unwrap();
    let spec = InputSpec::uniform(circuit.num_inputs());
    let truth = measure_activity(
        &circuit,
        &StreamModel::uniform(circuit.num_inputs()),
        1 << 18,
        1,
    )
    .switching;
    let density = TransitionDensity.estimate(&circuit, &spec).unwrap();
    let mean_truth: f64 = truth.iter().sum::<f64>() / truth.len() as f64;
    let mean_density: f64 = density.iter().sum::<f64>() / density.len() as f64;
    assert!(
        mean_density >= mean_truth * 0.95,
        "density {mean_density} vs truth {mean_truth}"
    );
}

#[test]
fn two_state_model_degrades_under_temporal_correlation() {
    // Ablation A2 as a regression test: the four-state model must beat the
    // two-state proxy when inputs are temporally correlated.
    use swact_sim::SignalModel;
    let circuit = catalog::benchmark("count").unwrap();
    let n = circuit.num_inputs();
    let spec = InputSpec::from_models(vec![InputModel::new(0.5, 0.1).unwrap(); n]);
    let model = StreamModel {
        signals: vec![SignalModel::new(0.5, 0.1); n],
        groups: Vec::new(),
    };
    let truth = measure_activity(&circuit, &model, 1 << 19, 3).switching;
    let four = estimate(&circuit, &spec, &Options::default()).unwrap();
    let two = swact::twostate::estimate_two_state(&circuit, &spec, &Options::default()).unwrap();
    let four_err = mean_abs_error(&four.switching_all(), &truth);
    let two_err = mean_abs_error(&two.switching, &truth);
    assert!(
        four_err * 3.0 < two_err,
        "expected clear four-state win: {four_err} vs {two_err}"
    );
}
