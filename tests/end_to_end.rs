//! End-to-end accuracy: the Bayesian-network estimator against
//! logic-simulation ground truth across benchmark classes, reproducing the
//! quality bar of the paper's Table 1.

use swact::{estimate, CompiledEstimator, InputModel, InputSpec, Options, PowerModel};
use swact_circuit::catalog;
use swact_sim::{measure_activity, SignalModel, StreamModel};

fn uniform_truth(circuit: &swact_circuit::Circuit, pairs: usize) -> Vec<f64> {
    let model = StreamModel::uniform(circuit.num_inputs());
    measure_activity(circuit, &model, pairs, 0x7e57).switching
}

#[test]
fn single_bn_circuits_are_simulation_exact() {
    // c17 and pcler8 fit one Bayesian network, so the only deviation from
    // simulation is the simulation's own sampling noise.
    for name in ["c17", "pcler8"] {
        let circuit = catalog::benchmark(name).unwrap();
        let spec = InputSpec::uniform(circuit.num_inputs());
        let est = estimate(&circuit, &spec, &Options::default()).unwrap();
        assert_eq!(est.num_segments(), 1, "{name}");
        let truth = uniform_truth(&circuit, 1 << 19);
        let stats = est.compare(&truth);
        assert!(
            stats.mean_abs_error < 0.004,
            "{name}: µErr {}",
            stats.mean_abs_error
        );
    }
}

#[test]
fn segmented_circuits_stay_in_the_papers_error_band() {
    // Larger circuits use multiple BNs; errors stay in the 1e-3 band and
    // %Error of the average activity below 1% (Table 1's headline).
    for name in ["c432", "c880", "count", "b9"] {
        let circuit = catalog::benchmark(name).unwrap();
        let spec = InputSpec::uniform(circuit.num_inputs());
        let est = estimate(&circuit, &spec, &Options::default()).unwrap();
        let truth = uniform_truth(&circuit, 1 << 19);
        let stats = est.compare(&truth);
        assert!(
            stats.mean_abs_error < 0.01,
            "{name}: µErr {}",
            stats.mean_abs_error
        );
        assert!(
            stats.percent_error < 1.0,
            "{name}: %Err {}",
            stats.percent_error
        );
    }
}

#[test]
fn temporally_correlated_inputs_are_tracked() {
    // The four-state formulation models input temporal correlation; verify
    // against a simulation driven by the same Markov models.
    let circuit = catalog::benchmark("count").unwrap();
    let n = circuit.num_inputs();
    let activity = 0.12;
    let spec = InputSpec::from_models(vec![InputModel::new(0.5, activity).unwrap(); n]);
    let est = estimate(&circuit, &spec, &Options::default()).unwrap();
    let model = StreamModel {
        signals: vec![SignalModel::new(0.5, activity); n],
        groups: Vec::new(),
    };
    let truth = measure_activity(&circuit, &model, 1 << 19, 0xabcd).switching;
    let stats = est.compare(&truth);
    assert!(
        stats.mean_abs_error < 0.01,
        "µErr {} under temporal correlation",
        stats.mean_abs_error
    );
}

#[test]
fn precompiled_reestimation_matches_fresh_estimation() {
    let circuit = catalog::benchmark("malu4").unwrap();
    let compiled = CompiledEstimator::compile(&circuit, &Options::default()).unwrap();
    for p in [0.2, 0.5, 0.8] {
        let spec = InputSpec::independent(vec![p; circuit.num_inputs()]);
        let reused = compiled.estimate(&spec).unwrap();
        let fresh = estimate(&circuit, &spec, &Options::default()).unwrap();
        for line in circuit.line_ids() {
            assert!(
                (reused.switching(line) - fresh.switching(line)).abs() < 1e-12,
                "line {} at p={p}",
                circuit.line_name(line)
            );
        }
        // Re-propagation must be far cheaper than compilation.
        assert!(reused.propagate_time() < compiled.compile_time() * 10);
    }
}

#[test]
fn power_tracks_activity_scenarios() {
    let circuit = catalog::benchmark("pcler8").unwrap();
    let model = PowerModel::default();
    let compiled = CompiledEstimator::compile(&circuit, &Options::default()).unwrap();
    let mut previous = f64::INFINITY;
    for activity in [0.5, 0.25, 0.1, 0.02] {
        let spec = InputSpec::from_models(vec![
            InputModel::new(0.5, activity).unwrap();
            circuit.num_inputs()
        ]);
        let est = compiled.estimate(&spec).unwrap();
        let watts = model.power(&circuit, &est).total_watts;
        assert!(watts < previous, "power must fall with input activity");
        previous = watts;
    }
}

#[test]
fn bench_format_file_can_round_trip_through_estimator() {
    // Export a benchmark, re-parse it, and get identical estimates —
    // users will feed their own .bench files through this path.
    let original = catalog::benchmark("comp").unwrap();
    let text = swact_circuit::write::to_bench(&original);
    let reparsed = swact_circuit::parse::parse_bench("comp", &text).unwrap();
    let spec = InputSpec::uniform(original.num_inputs());
    let a = estimate(&original, &spec, &Options::default()).unwrap();
    let b = estimate(&reparsed, &spec, &Options::default()).unwrap();
    for line in original.line_ids() {
        let name = original.line_name(line);
        let other = reparsed.find_line(name).unwrap();
        assert!(
            (a.switching(line) - b.switching(other)).abs() < 1e-12,
            "line {name}"
        );
    }
}

#[test]
fn batch_engine_is_deterministic_across_worker_counts() {
    // The engine's headline guarantee: a segmented circuit, many input
    // scenarios, and any worker count produce bit-identical estimates in
    // submission order.
    let circuit = catalog::benchmark("c432").unwrap();
    let specs: Vec<InputSpec> = (0..10)
        .map(|k| {
            InputSpec::independent(
                (0..circuit.num_inputs()).map(move |i| 0.1 + 0.08 * ((i + k) % 10) as f64),
            )
        })
        .collect();
    let options = Options::default();

    let serial = swact_engine::Engine::with_jobs(1)
        .estimate_batch(&circuit, &specs, &options)
        .unwrap();
    let parallel = swact_engine::Engine::with_jobs(4)
        .estimate_batch(&circuit, &specs, &options)
        .unwrap();
    assert!(serial.all_ok() && parallel.all_ok());

    for (a, b) in serial.items.iter().zip(&parallel.items) {
        assert_eq!(a.index, b.index);
        let (a, b) = (a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
        for (x, y) in a.switching_all().iter().zip(b.switching_all().iter()) {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "scenario outputs must be bit-identical"
            );
        }
    }
}

#[test]
fn batch_engine_reuses_one_compiled_model_across_batches() {
    // Re-propagating over a cached junction tree must equal a fresh
    // compile — the scratch-state reuse inside the compiled model cannot
    // leak evidence between requests.
    let circuit = catalog::benchmark("c880").unwrap();
    let options = Options::default();
    let busy = InputSpec::independent(vec![0.5; circuit.num_inputs()]);
    let quiet = InputSpec::independent(vec![0.05; circuit.num_inputs()]);
    let engine = swact_engine::Engine::with_jobs(2);

    let first = engine
        .estimate_batch(&circuit, std::slice::from_ref(&busy), &options)
        .unwrap();
    assert!(!first.cache_hit);
    // Different evidence in between dirties every pooled propagation state.
    engine
        .estimate_batch(&circuit, std::slice::from_ref(&quiet), &options)
        .unwrap();
    let second = engine
        .estimate_batch(&circuit, std::slice::from_ref(&busy), &options)
        .unwrap();
    assert!(second.cache_hit, "same circuit+options must hit the cache");
    assert_eq!(engine.metrics().compile_misses, 1);
    assert!(engine.metrics().compile_hits >= 2);

    let fresh = CompiledEstimator::compile(&circuit, &options)
        .unwrap()
        .estimate(&busy)
        .unwrap();
    let cached = second.items[0].result.as_ref().unwrap();
    for (x, y) in cached
        .switching_all()
        .iter()
        .zip(fresh.switching_all().iter())
    {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "cached tree must match fresh compile"
        );
    }
}
